"""Simulated operating-system kernel for the Maxoid reproduction.

This package provides the substrate the paper's implementation runs on:

- :mod:`repro.kernel.vfs` — an in-memory inode filesystem with POSIX-style
  permissions and UIDs.
- :mod:`repro.kernel.aufs` — a from-scratch union filesystem with branch
  priorities, copy-up (copy-on-write) and whiteouts, modelled on Aufs as used
  by the paper (section 4.2), including the "always allow read" modification.
- :mod:`repro.kernel.mounts` — per-process mount namespaces with
  longest-prefix mount resolution (the simulated ``unshare()``/``mount()``).
- :mod:`repro.kernel.proc` — the process table; each task carries the Maxoid
  execution context (which app, on behalf of which initiator).
- :mod:`repro.kernel.syscall` — the syscall layer binding a process to its
  namespace and credentials.
- :mod:`repro.kernel.binder` — Binder IPC transport with the Maxoid
  restriction hook (section 3.4).
- :mod:`repro.kernel.network` — a toy network stack whose ``connect()``
  returns ENETUNREACH for delegates (section 6.2).
- :mod:`repro.kernel.sysfs` — the Zygote-to-kernel channel used to stamp a
  task with its app/initiator identity (section 6.2).
"""

from repro.kernel.vfs import Filesystem, Inode, InodeKind, Stat, Credentials
from repro.kernel.aufs import AufsMount, Branch
from repro.kernel.mounts import MountNamespace
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.kernel.syscall import Syscalls, O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, O_APPEND, O_TRUNC, O_EXCL
from repro.kernel.binder import BinderDriver, BinderEndpoint, Transaction
from repro.kernel.network import NetworkStack, Socket
from repro.kernel.sysfs import Sysfs

__all__ = [
    "Filesystem",
    "Inode",
    "InodeKind",
    "Stat",
    "Credentials",
    "AufsMount",
    "Branch",
    "MountNamespace",
    "Process",
    "ProcessTable",
    "TaskContext",
    "Syscalls",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_APPEND",
    "O_TRUNC",
    "O_EXCL",
    "BinderDriver",
    "BinderEndpoint",
    "Transaction",
    "NetworkStack",
    "Socket",
    "Sysfs",
]
