"""The process table and per-task Maxoid execution context.

The paper adds to the kernel's ``task_struct`` the identity of the app a
process belongs to and, when it is a delegate, the initiator it runs on
behalf of (section 6.2). :class:`TaskContext` carries exactly that pair; it
is stamped onto a process via the :mod:`repro.kernel.sysfs` channel when
Zygote forks the process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import NoSuchProcess
from repro.kernel.mounts import MountNamespace
from repro.kernel.vfs import Credentials
from repro.obs import OBS, ObsContext


@dataclass(frozen=True)
class TaskContext:
    """Who a process is, and on whose behalf it runs.

    ``app`` is the owning package; ``initiator`` is ``None`` when the app
    runs for itself and the initiator's package when it is a delegate.
    ``B^A`` from the paper is ``TaskContext(app="B", initiator="A")``.
    """

    app: Optional[str]
    initiator: Optional[str] = None

    @property
    def is_delegate(self) -> bool:
        return self.initiator is not None and self.initiator != self.app

    @property
    def effective_initiator(self) -> Optional[str]:
        """The initiator whose state taints this task (self if not a delegate)."""
        return self.initiator if self.is_delegate else self.app

    def __str__(self) -> str:
        if self.is_delegate:
            return f"{self.app}^{self.initiator}"
        return str(self.app)


SYSTEM_CONTEXT = TaskContext(app=None, initiator=None)


class Process:
    """A simulated process: credentials, mount namespace, task context."""

    _pid_counter = itertools.count(100)

    def __init__(
        self,
        cred: Credentials,
        namespace: MountNamespace,
        context: TaskContext = SYSTEM_CONTEXT,
        name: str = "",
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.pid: int = next(Process._pid_counter)
        self.cred = cred
        self.namespace = namespace
        self.context = context
        self.name = name or str(context)
        # The observability context of the device this process runs on;
        # every layer acting for the process gates on it.
        self.obs = obs if obs is not None else OBS
        self.alive = True
        # Exit hooks let the framework tear down per-process state
        # (e.g. clipboard instances) when a process is killed.
        self.exit_hooks: List = []

    def kill(self) -> None:
        if not self.alive:
            return
        self.alive = False
        for hook in self.exit_hooks:
            hook(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"<Process pid={self.pid} {self.name} ({state})>"


class ProcessTable:
    """The kernel's view of all processes."""

    def __init__(self) -> None:
        self._processes: Dict[int, Process] = {}

    def register(self, process: Process) -> Process:
        self._processes[process.pid] = process
        return process

    def get(self, pid: int) -> Process:
        process = self._processes.get(pid)
        if process is None or not process.alive:
            raise NoSuchProcess(f"pid {pid}")
        return process

    def kill(self, pid: int) -> None:
        self.get(pid).kill()

    def alive(self) -> List[Process]:
        return [p for p in self._processes.values() if p.alive]

    def instances_of(self, app: str, initiator: Optional[str] = "*") -> List[Process]:
        """All live processes of ``app``.

        With the default ``initiator="*"`` any context matches; pass
        ``None`` for "running on behalf of itself" or a package name for a
        specific delegate context.
        """
        found = []
        for process in self.alive():
            if process.context.app != app:
                continue
            if initiator == "*" or process.context.initiator == initiator:
                found.append(process)
        return found

    def instances_of_initiator(self, initiator: str) -> List[Process]:
        """All live delegate processes running on behalf of ``initiator``."""
        return [
            p
            for p in self.alive()
            if p.context.is_delegate and p.context.initiator == initiator
        ]

    def __iter__(self) -> Iterator[Process]:
        return iter(self.alive())

    def __len__(self) -> int:
        return len(self.alive())
