"""The fault plane: named fault points, armed policies, and the schedule.

A *fault point* is a named place in a mutating hot path (``vfs.write``,
``aufs.copy_up``, ``cow.delta_commit``, ...). Instrumented call sites gate
on a single attribute check, exactly like :mod:`repro.obs`::

    if _FAULTS.enabled:
        _FAULTS.hit("vfs.write", path=path)

so the disabled path costs one attribute load and a branch and nothing
else. When the plane is armed, every ``hit()`` consults the policies armed
at that point (first one that fires wins) and either returns normally,
raises a substituted error (e.g. :class:`~repro.errors.ReadOnlyFilesystem`),
or raises :class:`SimulatedCrash` — the "power went out here" signal that
no simulated component may catch.

Everything the plane decides is recorded twice:

- the **schedule**: one compact ``(seq, point, outcome)`` entry per
  consult, serializable to bytes via :meth:`FaultPlane.schedule_bytes` —
  two runs with the same seed and workload produce byte-identical
  schedules (the reproducibility contract);
- the **injection log**: one rich entry (with call-site context) per
  *fired* fault, which :class:`repro.core.audit.AuditLog` ingests so a
  post-mortem shows exactly why a run failed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FAULT_POINTS",
    "FaultPlane",
    "FaultPolicy",
    "SimulatedCrash",
    "UnknownFaultPoint",
    "register_point",
]


class SimulatedCrash(BaseException):
    """The machine died at a fault point.

    Deliberately a :class:`BaseException`: a real crash cannot be handled
    by the code it interrupts, so no ``except ReproError`` / ``except
    Exception`` in the simulated stack may swallow it. Only the test
    harness (or whoever armed the plane) catches it — and then calls
    ``Device.recover()``.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"simulated crash at fault point {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit


class UnknownFaultPoint(ValueError):
    """Arming a point that no instrumented call site declares."""


#: Every declared fault point: name -> (layer, description). The layer is
#: the span-taxonomy prefix (the text before the first dot), matching the
#: :mod:`repro.obs` span names for the same operations.
FAULT_POINTS: Dict[str, str] = {}


def register_point(name: str, description: str) -> str:
    """Declare a fault point (idempotent; call at module import time)."""
    FAULT_POINTS[name] = description
    return name


# The core mutating paths, one per instrumented layer. Sub-points (with a
# second dot) sit *between* the steps of a multi-step mutation, so a crash
# there exercises the crash-atomicity machinery of that path.
register_point("vfs.write", "syscall-layer file write/append")
register_point("aufs.copy_up", "union-fs copy-up, before any mutation")
register_point("aufs.copy_up.publish", "between temp-file write and rename")
register_point("mounts.resolve", "mount-namespace path resolution")
register_point("binder.transact", "binder transaction dispatch")
register_point("am.delegate_bookkeeping", "between delegate fork and registration")
register_point("zygote.fork", "app-process creation")
register_point("cow.delta_commit", "COW proxy delta-row commit, before journaling")
register_point("cow.delta_commit.apply", "between journal write and primary apply")
register_point("cow.delta_commit.truncate", "between primary apply and journal clear")
register_point("vol.commit", "volatile file commit, before journaling")
register_point("vol.commit.journal", "inside the journal-entry write (torn entry)")
register_point("vol.commit.apply", "between journal write and destination write")
register_point("vol.commit.truncate", "between destination write and journal clear")
register_point("bt.send", "bluetooth egress, before the delegate guard")
register_point("sms.send", "telephony SMS egress, before the delegate guard")
register_point("dm.enqueue", "download-manager enqueue, before the provider insert")


class FaultPolicy:
    """Decides, per hit of an armed point, whether to inject a fault.

    Policies are stateful (``fail_nth`` counts, ``fail_prob`` owns its own
    seeded RNG) and composable: several can be armed at one point, and the
    first that returns an exception wins.
    """

    #: Human-readable tag recorded in the injection log.
    describe: str = "policy"

    def decide(
        self, point: str, hit: int, ctx: Dict[str, Any]
    ) -> Optional[BaseException]:
        """Return the exception to raise at this hit, or None to pass."""
        raise NotImplementedError


class FaultPlane:
    """Armed fault points behind one enable switch (mirrors ``OBS``)."""

    def __init__(self) -> None:
        self.enabled = False
        self._armed: Dict[str, List[FaultPolicy]] = {}
        self._hits: Dict[str, int] = {}
        self._seq = 0
        #: (seq, point, outcome) per consult; outcome is "pass",
        #: "raise:<ErrorType>" or "crash".
        self.schedule: List[Tuple[int, str, str]] = []
        #: One dict per *fired* fault, with the call-site context.
        self.injection_log: List[Dict[str, Any]] = []
        #: ``fn(point, outcome, ctx)`` per consult — the flight
        #: recorder's tap. Empty (and costing one truthiness check per
        #: consult, nothing per disabled call site) until armed.
        self._listeners: List[Callable[[str, str, Dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self, point: str, *policies: FaultPolicy) -> "FaultPlane":
        """Arm one or more policies at ``point`` (appended in order)."""
        if point not in FAULT_POINTS:
            raise UnknownFaultPoint(
                f"{point!r} is not a declared fault point; known points: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        if not policies:
            raise ValueError("arm() needs at least one policy")
        self._armed.setdefault(point, []).extend(policies)
        self.enabled = True
        return self

    def disarm(self, point: Optional[str] = None) -> None:
        """Drop armed policies (one point, or all); disables when empty."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)
        if not self._armed:
            self.enabled = False

    def reset(self) -> None:
        """Disarm everything and forget all recorded state."""
        self.disarm()
        self._hits.clear()
        self._seq = 0
        self.schedule.clear()
        self.injection_log.clear()

    @contextmanager
    def scope(self) -> Iterator["FaultPlane"]:
        """``with FAULTS.scope(): ...`` — arm freely, always left clean."""
        try:
            yield self
        finally:
            self.reset()

    def armed_points(self) -> List[str]:
        return sorted(self._armed)

    # ------------------------------------------------------------------
    # Consult listeners (the flight-recorder tap)
    # ------------------------------------------------------------------

    def add_listener(self, fn: Callable[[str, str, Dict[str, Any]], None]) -> None:
        """Register ``fn(point, outcome, ctx)`` to observe every consult.

        Listeners see fired faults *before* the exception propagates, so
        a recorder captures the injection even when the workload dies on
        it. They are not cleared by :meth:`reset` — arm/disarm them
        explicitly (the flight recorder does)."""
        if fn not in self._listeners:
            self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, str, Dict[str, Any]], None]) -> None:
        if fn in self._listeners:
            self._listeners.remove(fn)

    # ------------------------------------------------------------------
    # The hot-path entry
    # ------------------------------------------------------------------

    def hit(self, point: str, **ctx: Any) -> None:
        """Consult the plane at ``point``; raises when a policy fires.

        Call sites gate on ``enabled`` *before* building ``ctx`` kwargs;
        this method is only entered once the plane is armed.
        """
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        self._seq += 1
        seq = self._seq
        for policy in self._armed.get(point, ()):
            error = policy.decide(point, hit, ctx)
            if error is None:
                continue
            outcome = (
                "crash"
                if isinstance(error, SimulatedCrash)
                else f"raise:{type(error).__name__}"
            )
            self.schedule.append((seq, point, outcome))
            self.injection_log.append(
                {
                    "seq": seq,
                    "point": point,
                    "hit": hit,
                    "outcome": outcome,
                    "policy": policy.describe,
                    "ctx": dict(ctx),
                }
            )
            if self._listeners:
                for listener in self._listeners:
                    listener(point, outcome, ctx)
            raise error
        self.schedule.append((seq, point, "pass"))
        if self._listeners:
            for listener in self._listeners:
                listener(point, "pass", ctx)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been consulted since reset."""
        return self._hits.get(point, 0)

    # ------------------------------------------------------------------
    # Reproducibility
    # ------------------------------------------------------------------

    def schedule_bytes(self) -> bytes:
        """The full consult schedule as bytes.

        Two runs of the same workload with the same seeds produce equal
        values — the determinism test's byte-identity contract.
        """
        return b"\n".join(
            f"{seq} {point} {outcome}".encode() for seq, point, outcome in self.schedule
        )


#: The process-wide fault plane every instrumented module gates on.
FAULTS = FaultPlane()
