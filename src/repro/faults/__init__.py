"""Deterministic fault injection for every mutating layer.

``FAULTS`` is the process-wide :class:`FaultPlane`; instrumented modules
gate on ``FAULTS.enabled`` (one attribute check — the disabled path stays
at seed speed) and consult ``FAULTS.hit("point", **ctx)`` when armed.
Policies (:func:`fail_nth`, :func:`fail_prob`, :func:`crash_at`,
:func:`fail_with`) are composable and reproducible; crashes raise
:class:`SimulatedCrash` and are undone by ``Device.recover()``.
"""

from .plane import (
    FAULT_POINTS,
    FAULTS,
    FaultPlane,
    FaultPolicy,
    SimulatedCrash,
    UnknownFaultPoint,
    register_point,
)
from .policies import crash_at, fail_nth, fail_prob, fail_with

__all__ = [
    "FAULT_POINTS",
    "FAULTS",
    "FaultPlane",
    "FaultPolicy",
    "SimulatedCrash",
    "UnknownFaultPoint",
    "crash_at",
    "fail_nth",
    "fail_prob",
    "fail_with",
    "register_point",
]
