"""Composable, reproducible fault policies.

Each factory returns a :class:`~repro.faults.plane.FaultPolicy` that is
deterministic given its arguments: ``fail_nth`` counts hits, ``fail_prob``
draws from its *own* ``random.Random(seed)`` (never the global RNG), and
``crash_at`` raises :class:`~repro.faults.plane.SimulatedCrash` on its
chosen hit. Arm several at one point and the first that fires wins.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.errors import InjectedFault

from .plane import FaultPolicy, SimulatedCrash

__all__ = ["crash_at", "fail_nth", "fail_prob", "fail_with"]


def _make_error(error: Any, point: str, hit: int) -> BaseException:
    """Build the exception to inject: instance, class, or default EIO."""
    if error is None:
        return InjectedFault(f"injected fault at {point} (hit #{hit})")
    if isinstance(error, BaseException):
        return error
    if isinstance(error, type) and issubclass(error, BaseException):
        try:
            return error(f"injected at {point} (hit #{hit})")
        except TypeError:
            return error()
    raise TypeError(f"not an exception or exception type: {error!r}")


class _LambdaPolicy(FaultPolicy):
    def __init__(
        self,
        describe: str,
        decide_fn: Callable[[str, int, Dict[str, Any]], Optional[BaseException]],
    ) -> None:
        self.describe = describe
        self._decide = decide_fn

    def decide(
        self, point: str, hit: int, ctx: Dict[str, Any]
    ) -> Optional[BaseException]:
        return self._decide(point, hit, ctx)


def fail_nth(k: int, error: Any = None) -> FaultPolicy:
    """Inject exactly once, at the k-th hit of the armed point (1-based)."""
    if k < 1:
        raise ValueError("fail_nth needs k >= 1 (hits are 1-based)")

    def decide(point: str, hit: int, ctx: Dict[str, Any]) -> Optional[BaseException]:
        if hit == k:
            return _make_error(error, point, hit)
        return None

    return _LambdaPolicy(f"fail_nth({k})", decide)


def fail_prob(p: float, seed: int, error: Any = None) -> FaultPolicy:
    """Inject with probability ``p`` per hit, from a private seeded RNG.

    The RNG belongs to the policy instance, so the decision sequence is a
    pure function of ``(p, seed)`` and the hit order — re-running the same
    workload with the same seed reproduces the same fault schedule
    byte-for-byte.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("fail_prob needs 0 <= p <= 1")
    rng = random.Random(seed)

    def decide(point: str, hit: int, ctx: Dict[str, Any]) -> Optional[BaseException]:
        if rng.random() < p:
            return _make_error(error, point, hit)
        return None

    return _LambdaPolicy(f"fail_prob({p}, seed={seed})", decide)


def crash_at(nth: int = 1) -> FaultPolicy:
    """Simulate a whole-machine crash at the nth hit of the armed point.

    Raises :class:`SimulatedCrash` (a ``BaseException``), which unwinds
    through every simulated layer uncaught; the harness catches it and
    calls ``Device.recover()``.
    """
    if nth < 1:
        raise ValueError("crash_at needs nth >= 1 (hits are 1-based)")

    def decide(point: str, hit: int, ctx: Dict[str, Any]) -> Optional[BaseException]:
        if hit == nth:
            return SimulatedCrash(point, hit)
        return None

    return _LambdaPolicy(f"crash_at(nth={nth})", decide)


def fail_with(error: Any) -> FaultPolicy:
    """Substitute ``error`` on every hit — e.g. a store that has gone
    read-only (``ReadOnlyFilesystem``) or a dead network
    (``NetworkUnreachable``) for as long as the point stays armed."""
    if not (
        isinstance(error, BaseException)
        or (isinstance(error, type) and issubclass(error, BaseException))
    ):
        raise TypeError(f"not an exception or exception type: {error!r}")

    def decide(point: str, hit: int, ctx: Dict[str, Any]) -> Optional[BaseException]:
        return _make_error(error, point, hit)

    name = error.__name__ if isinstance(error, type) else type(error).__name__
    return _LambdaPolicy(f"fail_with({name})", decide)
