"""Exception hierarchy for the Maxoid reproduction.

The kernel-level errors mirror POSIX errno semantics (the simulated syscall
layer raises these instead of returning negative error codes), while the
Maxoid-level errors express policy decisions such as refused invocations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Kernel / POSIX-style errors
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for simulated kernel errors. ``errno_name`` mirrors POSIX."""

    errno_name = "EINVAL"


class FileNotFound(KernelError):
    """Path does not resolve to an existing file (ENOENT)."""

    errno_name = "ENOENT"


class FileExists(KernelError):
    """Exclusive creation hit an existing name (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectory(KernelError):
    """A non-directory appeared where a directory was required (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    """File operation attempted on a directory (EISDIR)."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(KernelError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""

    errno_name = "ENOTEMPTY"


class PermissionDenied(KernelError):
    """Credential check failed (EACCES)."""

    errno_name = "EACCES"


class ReadOnlyFilesystem(KernelError):
    """Write attempted on a read-only mount or branch (EROFS)."""

    errno_name = "EROFS"


class BadFileDescriptor(KernelError):
    """Operation on a closed or wrong-mode file handle (EBADF)."""

    errno_name = "EBADF"


class CrossDeviceLink(KernelError):
    """rename() across mounts (EXDEV)."""

    errno_name = "EXDEV"


class NetworkUnreachable(KernelError):
    """connect() refused; Maxoid emulates network loss for delegates
    (ENETUNREACH, see paper section 6.2)."""

    errno_name = "ENETUNREACH"


class NoSuchProcess(KernelError):
    """Operation on a dead or unknown pid (ESRCH)."""

    errno_name = "ESRCH"


class InjectedFault(KernelError):
    """Generic I/O error substituted by the fault plane (EIO).

    The default error for :mod:`repro.faults` policies when no specific
    substitution (EROFS, ENETUNREACH, ...) was requested.
    """

    errno_name = "EIO"


# ---------------------------------------------------------------------------
# Mini SQL engine errors
# ---------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for errors raised by :mod:`repro.minisql`."""


class SqlSyntaxError(SqlError):
    """The SQL text failed to tokenize or parse."""


class SqlNameError(SqlError):
    """Unknown table, view, column, or function name."""


class SqlIntegrityError(SqlError):
    """Constraint violation, e.g. duplicate primary key or NOT NULL."""


class SqlReadOnlyError(SqlError):
    """Write attempted on a SQL view with no INSTEAD OF trigger."""


# ---------------------------------------------------------------------------
# Android framework errors
# ---------------------------------------------------------------------------


class AndroidError(ReproError):
    """Base class for simulated Android framework errors."""


class PackageNotFound(AndroidError):
    """Unknown package name."""


class ActivityNotFound(AndroidError):
    """No activity resolved for an intent."""


class SecurityException(AndroidError):
    """Android-style security failure (missing permission, bad URI grant)."""


class ProviderNotFound(AndroidError):
    """No content provider registered for an authority."""


# ---------------------------------------------------------------------------
# Maxoid policy errors
# ---------------------------------------------------------------------------


class MaxoidError(ReproError):
    """Base class for Maxoid policy violations."""


class NestedDelegationError(MaxoidError):
    """A delegate asked to create its own delegate (unsupported, paper 3.4)."""


class IpcDenied(MaxoidError):
    """Binder transaction outside the delegate's allowed peer set."""


class DelegateNetworkDenied(MaxoidError):
    """A delegate asked a trusted service to touch the network on its
    behalf (e.g. a Downloads fetch request, paper section 6.2)."""


class DelegateTimeout(MaxoidError):
    """A binder delegate invocation blew through its virtual-clock
    deadline (and its bounded retries) under the deterministic
    scheduler; surfaced in the AuditLog instead of hanging a schedule."""
