"""Property-based tests for path handling and mount resolution."""

from __future__ import annotations

import posixpath

from hypothesis import given, settings, strategies as st

from repro.kernel import path as vpath
from repro.kernel.mounts import MountNamespace
from repro.kernel.vfs import Filesystem

component = st.text(alphabet="abcdwxyz0", min_size=1, max_size=5)
abs_path = st.lists(component, min_size=0, max_size=5).map(
    lambda parts: "/" + "/".join(parts)
)


class TestPathProperties:
    @given(path=abs_path)
    @settings(max_examples=80, deadline=None)
    def test_normalize_idempotent(self, path):
        once = vpath.normalize(path)
        assert vpath.normalize(once) == once

    @given(path=abs_path)
    @settings(max_examples=80, deadline=None)
    def test_normalize_matches_posixpath(self, path):
        # For dot-free absolute paths our normalize agrees with the
        # reference implementation.
        expected = posixpath.normpath(path)
        if expected == "//":
            expected = "/"
        assert vpath.normalize(path) == expected

    @given(parent=abs_path, name=component)
    @settings(max_examples=80, deadline=None)
    def test_join_then_split_roundtrip(self, parent, name):
        joined = vpath.join(parent, name)
        assert vpath.basename(joined) == name
        assert vpath.parent(joined) == vpath.normalize(parent)

    @given(path=abs_path, ancestor=abs_path)
    @settings(max_examples=80, deadline=None)
    def test_relative_to_inverts_join(self, path, ancestor):
        if vpath.is_within(path, ancestor):
            relative = vpath.relative_to(path, ancestor)
            assert vpath.join(ancestor, relative) == vpath.normalize(path)

    @given(path=abs_path)
    @settings(max_examples=50, deadline=None)
    def test_every_path_within_root(self, path):
        assert vpath.is_within(path, "/")


class TestMountResolutionProperties:
    @given(
        mounts=st.lists(abs_path.filter(lambda p: p != "/"), min_size=0, max_size=5, unique=True),
        probe=abs_path,
    )
    @settings(max_examples=80, deadline=None)
    def test_longest_prefix_always_wins(self, mounts, probe):
        namespace = MountNamespace(Filesystem(label="root"))
        for point in mounts:
            namespace.mount(point, Filesystem(label=point))
        fs, inner = namespace.resolve(probe)
        matching = [p for p in mounts if vpath.is_within(probe, p)]
        if matching:
            best = max(matching, key=len)
            assert fs.label == best
            assert vpath.join(best, inner) == vpath.normalize(probe)
        else:
            assert fs.label == "root"
            assert inner == vpath.normalize(probe)

    @given(
        mounts=st.lists(abs_path.filter(lambda p: p != "/"), min_size=1, max_size=4, unique=True),
        probe=abs_path,
    )
    @settings(max_examples=50, deadline=None)
    def test_unshare_resolves_identically(self, mounts, probe):
        namespace = MountNamespace(Filesystem(label="root"))
        for point in mounts:
            namespace.mount(point, Filesystem(label=point))
        clone = namespace.unshare()
        original_fs, original_inner = namespace.resolve(probe)
        clone_fs, clone_inner = clone.resolve(probe)
        assert original_fs is clone_fs
        assert original_inner == clone_inner
