"""Mount namespace tests: longest-prefix resolution, unshare isolation."""

import pytest

from repro.errors import FileNotFound
from repro.kernel.mounts import MountNamespace
from repro.kernel.vfs import Filesystem, ROOT_CRED


@pytest.fixture
def namespace():
    return MountNamespace(Filesystem(label="root"))


class TestResolution:
    def test_root_resolves_to_root_fs(self, namespace):
        fs, inner = namespace.resolve("/etc/config")
        assert inner == "/etc/config"
        assert fs.label == "root"

    def test_longest_prefix_wins(self, namespace):
        sdcard = Filesystem(label="sdcard")
        private = Filesystem(label="private")
        namespace.mount("/storage/sdcard", sdcard)
        namespace.mount("/storage/sdcard/data/A", private)
        fs, inner = namespace.resolve("/storage/sdcard/data/A/file")
        assert fs.label == "private"
        assert inner == "/file"
        fs, inner = namespace.resolve("/storage/sdcard/data/other")
        assert fs.label == "sdcard"
        assert inner == "/data/other"

    def test_exact_mount_point_path(self, namespace):
        sdcard = Filesystem(label="sdcard")
        namespace.mount("/storage/sdcard", sdcard)
        fs, inner = namespace.resolve("/storage/sdcard")
        assert fs.label == "sdcard"
        assert inner == "/"

    def test_prefix_is_component_wise(self, namespace):
        namespace.mount("/data", Filesystem(label="data"))
        fs, _ = namespace.resolve("/database/x")
        assert fs.label == "root"

    def test_mount_for(self, namespace):
        sdcard = Filesystem(label="sdcard")
        namespace.mount("/storage/sdcard", sdcard)
        point, fs = namespace.mount_for("/storage/sdcard/tmp/f")
        assert point == "/storage/sdcard"
        assert fs.label == "sdcard"


class TestMountManagement:
    def test_mount_shadows_previous(self, namespace):
        namespace.mount("/m", Filesystem(label="one"))
        namespace.mount("/m", Filesystem(label="two"))
        fs, _ = namespace.resolve("/m/x")
        assert fs.label == "two"

    def test_umount(self, namespace):
        namespace.mount("/m", Filesystem(label="one"))
        namespace.umount("/m")
        fs, _ = namespace.resolve("/m/x")
        assert fs.label == "root"

    def test_umount_root_rejected(self, namespace):
        with pytest.raises(ValueError):
            namespace.umount("/")

    def test_umount_nonmount_raises(self, namespace):
        with pytest.raises(FileNotFound):
            namespace.umount("/not-mounted")

    def test_mount_points_sorted(self, namespace):
        namespace.mount("/b", Filesystem())
        namespace.mount("/a", Filesystem())
        assert namespace.mount_points() == ["/", "/a", "/b"]


class TestUnshare:
    def test_clone_sees_existing_mounts(self, namespace):
        namespace.mount("/m", Filesystem(label="shared"))
        clone = namespace.unshare()
        fs, _ = clone.resolve("/m/x")
        assert fs.label == "shared"

    def test_clone_mounts_invisible_to_parent(self, namespace):
        clone = namespace.unshare()
        clone.mount("/private", Filesystem(label="clone-only"))
        fs, _ = namespace.resolve("/private/x")
        assert fs.label == "root"

    def test_parent_mounts_after_clone_invisible_to_clone(self, namespace):
        clone = namespace.unshare()
        namespace.mount("/late", Filesystem(label="late"))
        fs, _ = clone.resolve("/late/x")
        assert fs.label == "root"

    def test_underlying_files_shared(self, namespace):
        shared = Filesystem(label="shared")
        namespace.mount("/m", shared)
        clone = namespace.unshare()
        fs, inner = namespace.resolve("/m/f")
        fs.write_file(inner, b"both see this", ROOT_CRED)
        clone_fs, clone_inner = clone.resolve("/m/f")
        assert clone_fs.read_file(clone_inner, ROOT_CRED) == b"both see this"
