"""Process table, task context, and syscall-layer tests."""

import pytest

from repro.errors import CrossDeviceLink, NoSuchProcess, PermissionDenied
from repro.kernel.mounts import MountNamespace
from repro.kernel.proc import Process, ProcessTable, TaskContext
from repro.kernel.syscall import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY, Syscalls
from repro.kernel.sysfs import Sysfs
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED


def make_process(uid=1001, app="com.example.app", initiator=None):
    namespace = MountNamespace(Filesystem(label="root"))
    return Process(
        cred=Credentials(uid=uid),
        namespace=namespace,
        context=TaskContext(app=app, initiator=initiator),
    )


class TestTaskContext:
    def test_normal_app_is_not_delegate(self):
        assert not TaskContext(app="B").is_delegate

    def test_delegate(self):
        context = TaskContext(app="B", initiator="A")
        assert context.is_delegate
        assert context.effective_initiator == "A"

    def test_self_initiator_is_not_delegate(self):
        assert not TaskContext(app="B", initiator="B").is_delegate

    def test_effective_initiator_of_normal_app_is_self(self):
        assert TaskContext(app="B").effective_initiator == "B"

    def test_str_notation(self):
        assert str(TaskContext(app="B", initiator="A")) == "B^A"
        assert str(TaskContext(app="B")) == "B"


class TestProcessTable:
    def test_register_and_get(self):
        table = ProcessTable()
        process = table.register(make_process())
        assert table.get(process.pid) is process

    def test_get_dead_raises(self):
        table = ProcessTable()
        process = table.register(make_process())
        process.kill()
        with pytest.raises(NoSuchProcess):
            table.get(process.pid)

    def test_kill_runs_exit_hooks(self):
        table = ProcessTable()
        process = table.register(make_process())
        seen = []
        process.exit_hooks.append(lambda p: seen.append(p.pid))
        table.kill(process.pid)
        assert seen == [process.pid]

    def test_double_kill_is_idempotent(self):
        process = make_process()
        calls = []
        process.exit_hooks.append(lambda p: calls.append(1))
        process.kill()
        process.kill()
        assert calls == [1]

    def test_instances_of_filters_by_context(self):
        table = ProcessTable()
        normal = table.register(make_process(app="B"))
        delegate = table.register(make_process(app="B", initiator="A"))
        table.register(make_process(app="C"))
        assert set(p.pid for p in table.instances_of("B")) == {normal.pid, delegate.pid}
        assert [p.pid for p in table.instances_of("B", initiator=None)] == [normal.pid]
        assert [p.pid for p in table.instances_of("B", initiator="A")] == [delegate.pid]

    def test_instances_of_initiator(self):
        table = ProcessTable()
        table.register(make_process(app="B"))
        delegate = table.register(make_process(app="B", initiator="A"))
        assert [p.pid for p in table.instances_of_initiator("A")] == [delegate.pid]


class TestSyscalls:
    def test_open_flags_roundtrip(self):
        process = make_process(uid=0)
        sys = Syscalls(process)
        with sys.open("/f", O_WRONLY | O_CREAT) as handle:
            handle.write(b"abc")
        with sys.open("/f", O_WRONLY | O_APPEND) as handle:
            handle.write(b"d")
        assert sys.read_file("/f") == b"abcd"

    def test_dead_process_cannot_syscall(self):
        process = make_process()
        sys = Syscalls(process)
        process.kill()
        with pytest.raises(NoSuchProcess):
            sys.exists("/")

    def test_rename_across_mounts_is_exdev(self):
        process = make_process(uid=0)
        process.namespace.mount("/other", Filesystem(label="other"))
        sys = Syscalls(process)
        sys.write_file("/f", b"x")
        with pytest.raises(CrossDeviceLink):
            sys.rename("/f", "/other/f")

    def test_rename_within_mount(self):
        process = make_process(uid=0)
        sys = Syscalls(process)
        sys.write_file("/f", b"x")
        sys.rename("/f", "/g")
        assert sys.read_file("/g") == b"x"

    def test_walk_files(self):
        process = make_process(uid=0)
        sys = Syscalls(process)
        sys.makedirs("/a/b")
        sys.write_file("/a/f1", b"1")
        sys.write_file("/a/b/f2", b"2")
        assert sys.walk_files("/a") == ["/a/b/f2", "/a/f1"]

    def test_copy_file(self):
        process = make_process(uid=0)
        sys = Syscalls(process)
        sys.write_file("/src", b"payload")
        sys.copy_file("/src", "/dst")
        assert sys.read_file("/dst") == b"payload"


class TestSysfs:
    def test_root_stamps_context(self):
        table = ProcessTable()
        process = table.register(make_process(app="old"))
        sysfs = Sysfs(table)
        sysfs.write_context(process.pid, "com.new.app", "com.init.app", ROOT_CRED)
        context = sysfs.read_context(process.pid)
        assert context.app == "com.new.app"
        assert context.initiator == "com.init.app"
        assert context.is_delegate

    def test_non_root_denied(self):
        table = ProcessTable()
        process = table.register(make_process())
        sysfs = Sysfs(table)
        with pytest.raises(PermissionDenied):
            sysfs.write_context(process.pid, "x", None, Credentials(uid=1001))
