"""Property-based tests for the VFS and the union filesystem.

Two core invariants:

1. The VFS behaves like a dict from paths to bytes under write/read/delete.
2. An Aufs union with an empty writable upper branch is observationally
   equivalent to its lower branch for reads; and after arbitrary writes,
   the lower branch is byte-identical to its initial state (copy-on-write
   never leaks a write downward) while the union always reads its own
   writes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.kernel.aufs import AufsMount, Branch
from repro.kernel.vfs import Filesystem, ROOT_CRED

# Path components: short, safe names (no '.wh.' prefix, no slashes).
component = st.text(
    alphabet="abcdefgh123", min_size=1, max_size=6
).filter(lambda s: not s.startswith(".wh."))
rel_path = st.lists(component, min_size=1, max_size=3).map(lambda parts: "/" + "/".join(parts))
payload = st.binary(min_size=0, max_size=64)


class TestVfsAsDict:
    @given(entries=st.dictionaries(rel_path, payload, min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_write_read_roundtrip(self, entries):
        fs = Filesystem()
        written = {}
        for path, data in entries.items():
            parent = path.rsplit("/", 1)[0] or "/"
            if parent != "/":
                try:
                    fs.mkdir(parent, ROOT_CRED, parents=True)
                except Exception:
                    # A parent component may already exist as a file from a
                    # previous entry; skip those collisions.
                    continue
            try:
                fs.write_file(path, data, ROOT_CRED)
            except Exception:
                continue
            written[path] = data
        for path, data in written.items():
            assert fs.read_file(path, ROOT_CRED) == data

    @given(path=rel_path, first=payload, second=payload)
    @settings(max_examples=60, deadline=None)
    def test_last_write_wins(self, path, first, second):
        fs = Filesystem()
        parent = path.rsplit("/", 1)[0] or "/"
        if parent != "/":
            fs.mkdir(parent, ROOT_CRED, parents=True)
        fs.write_file(path, first, ROOT_CRED)
        fs.write_file(path, second, ROOT_CRED)
        assert fs.read_file(path, ROOT_CRED) == second


def snapshot(fs: Filesystem, root: str = "/") -> dict:
    """Collect path -> bytes for a whole filesystem tree."""
    out = {}
    stack = [root]
    while stack:
        current = stack.pop()
        for name in fs.readdir(current, ROOT_CRED):
            child = current.rstrip("/") + "/" + name
            if fs.stat(child, ROOT_CRED).is_dir:
                stack.append(child)
            else:
                out[child] = fs.read_file(child, ROOT_CRED)
    return out


@st.composite
def union_workload(draw):
    """A lower-branch population plus a sequence of union operations."""
    lower_files = draw(st.dictionaries(rel_path, payload, min_size=1, max_size=5))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "append", "unlink", "read"]),
                rel_path,
                payload,
            ),
            min_size=1,
            max_size=10,
        )
    )
    return lower_files, ops


class TestUnionCopyOnWrite:
    @given(workload=union_workload())
    @settings(max_examples=60, deadline=None)
    def test_lower_branch_never_modified(self, workload):
        lower_files, ops = workload
        lower = Filesystem()
        for path, data in lower_files.items():
            parent = path.rsplit("/", 1)[0] or "/"
            if parent != "/":
                try:
                    lower.mkdir(parent, ROOT_CRED, parents=True)
                except Exception:
                    continue
            try:
                lower.write_file(path, data, ROOT_CRED)
            except Exception:
                continue
        before = snapshot(lower)
        upper = Filesystem()
        union = AufsMount(
            [Branch(upper, "/", writable=True), Branch(lower, "/", writable=False)],
            always_allow_read=True,
        )
        expected = dict(before)
        for op, path, data in ops:
            try:
                if op == "write":
                    union.write_file(path, data, ROOT_CRED)
                    expected[path] = data
                elif op == "append":
                    union.append_file(path, data, ROOT_CRED)
                    expected[path] = expected.get(path, b"") + data
                elif op == "unlink":
                    union.unlink(path, ROOT_CRED)
                    expected.pop(path, None)
                else:
                    union.read_file(path, ROOT_CRED)
            except Exception:
                continue
        # Invariant 1: copy-on-write never touches the lower branch.
        assert snapshot(lower) == before
        # Invariant 2: the union reads its own writes.
        for path, data in expected.items():
            try:
                got = union.read_file(path, ROOT_CRED)
            except Exception:
                continue  # masked by an unrelated op (e.g. file-over-dir)
            assert got == data
