"""Unit tests for the TrustedCloud store itself (kernel level)."""

import pytest

from repro.errors import FileNotFound
from repro.kernel.network import NetworkStack, TrustedCloud, TrustedCloudSocket


class TestTrustedCloudStore:
    def test_backend_registry(self):
        cloud = TrustedCloud()
        cloud.register_backend("com.app", "api.example")
        assert cloud.is_backend_for("com.app", "api.example")
        assert not cloud.is_backend_for("com.app", "other.example")
        assert not cloud.is_backend_for("com.other", "api.example")
        assert not cloud.is_backend_for(None, "api.example")

    def test_put_fetch_per_domain(self):
        cloud = TrustedCloud()
        cloud.put("h", "dom1", "r", b"one")
        cloud.put("h", "dom2", "r", b"two")
        assert cloud.fetch("h", "dom1", "r") == b"one"
        assert cloud.fetch("h", "dom2", "r") == b"two"

    def test_fetch_missing_raises(self):
        cloud = TrustedCloud()
        with pytest.raises(FileNotFound):
            cloud.fetch("h", "dom", "ghost")

    def test_received_audit(self):
        cloud = TrustedCloud()
        cloud.store("h", "dom", b"payload SECRET tail")
        assert cloud.domain_received("h", "dom", b"SECRET")
        assert not cloud.domain_received("h", "other", b"SECRET")

    def test_socket_wrapper(self):
        cloud = TrustedCloud()
        socket = TrustedCloudSocket(cloud, "h", "dom")
        assert socket.send(b"abc") == 3
        socket.put("r", b"stored")
        assert socket.fetch("r") == b"stored"
        socket.close()
        assert cloud.domain_received("h", "dom", b"abc")

    def test_enable_is_idempotent(self):
        stack = NetworkStack()
        first = stack.enable_trusted_cloud()
        second = stack.enable_trusted_cloud()
        assert first is second
