"""Single-branch Aufs fast-path tests.

Initiator mounts are single-branch (Table 2); the mount must behave
exactly like the backing subtree — this is how the paper's "no overhead
for initiators" claim holds — including ownership of created files.
"""

import pytest

from repro.errors import FileExists, FileNotFound
from repro.kernel.aufs import AufsMount, Branch
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED

APP = Credentials(uid=1001)


@pytest.fixture
def backing():
    fs = Filesystem(label="backing")
    fs.mkdir("/branch", ROOT_CRED, mode=0o777)
    return fs


@pytest.fixture
def mount(backing):
    return AufsMount(
        [Branch(backing, "/branch", writable=True, label="pub")],
        always_allow_read=True,
    )


class TestFastPathEquivalence:
    def test_write_read_roundtrip(self, mount, backing):
        mount.write_file("/f.txt", b"data", APP)
        assert mount.read_file("/f.txt", APP) == b"data"
        assert backing.read_file("/branch/f.txt", ROOT_CRED) == b"data"

    def test_created_file_owned_by_caller(self, mount, backing):
        mount.write_file("/mine.txt", b"x", APP)
        assert backing.stat("/branch/mine.txt", ROOT_CRED).uid == APP.uid

    def test_append_no_copy_up(self, mount):
        mount.write_file("/log", b"a", APP)
        mount.append_file("/log", b"b", APP)
        assert mount.read_file("/log", APP) == b"ab"
        assert mount.copy_up_count == 0

    def test_mkdir_and_readdir(self, mount):
        mount.mkdir("/d", APP)
        mount.write_file("/d/x", b"1", APP)
        assert mount.readdir("/d", APP) == ["x"]
        assert mount.readdir("/", APP) == ["d"]

    def test_mkdir_parents(self, mount):
        mount.mkdir("/a/b/c", APP, parents=True)
        assert mount.stat("/a/b/c", APP).is_dir

    def test_unlink(self, mount):
        mount.write_file("/gone", b"x", APP)
        mount.unlink("/gone", APP)
        assert not mount.exists("/gone", APP)

    def test_stat_missing_raises(self, mount):
        with pytest.raises(FileNotFound):
            mount.stat("/ghost", APP)

    def test_exclusive_create(self, mount):
        mount.write_file("/once", b"1", APP)
        with pytest.raises(FileExists):
            mount.open("/once", APP, write=True, create=True, exclusive=True)

    def test_no_whiteouts_ever_created(self, mount, backing):
        mount.write_file("/w", b"x", APP)
        mount.unlink("/w", APP)
        names = backing.readdir("/branch", ROOT_CRED)
        assert not any(name.startswith(".wh.") for name in names)

    def test_readonly_single_branch_rejects_writes(self, backing):
        from repro.errors import ReadOnlyFilesystem

        ro = AufsMount([Branch(backing, "/branch", writable=False)])
        with pytest.raises(ReadOnlyFilesystem):
            ro.write_file("/x", b"1", APP)

    def test_two_mounts_same_branch_share_state(self, backing):
        first = AufsMount([Branch(backing, "/branch", writable=True)])
        second = AufsMount([Branch(backing, "/branch", writable=True)])
        first.write_file("/shared", b"from-first", APP)
        assert second.read_file("/shared", APP) == b"from-first"
