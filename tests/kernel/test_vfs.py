"""In-memory VFS tests: files, directories, permissions, rename."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
    ReadOnlyFilesystem,
)
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED

ALICE = Credentials(uid=1001)
BOB = Credentials(uid=1002)


@pytest.fixture
def fs():
    return Filesystem(label="test")


class TestFileBasics:
    def test_write_then_read(self, fs):
        fs.write_file("/hello.txt", b"hi", ROOT_CRED)
        assert fs.read_file("/hello.txt", ROOT_CRED) == b"hi"

    def test_overwrite_truncates(self, fs):
        fs.write_file("/f", b"long content", ROOT_CRED)
        fs.write_file("/f", b"x", ROOT_CRED)
        assert fs.read_file("/f", ROOT_CRED) == b"x"

    def test_append(self, fs):
        fs.write_file("/f", b"ab", ROOT_CRED)
        fs.append_file("/f", b"cd", ROOT_CRED)
        assert fs.read_file("/f", ROOT_CRED) == b"abcd"

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.read_file("/nope", ROOT_CRED)

    def test_open_without_create_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/nope", ROOT_CRED)

    def test_exclusive_create_on_existing_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        with pytest.raises(FileExists):
            fs.open("/f", ROOT_CRED, write=True, create=True, exclusive=True)

    def test_partial_read_and_seek(self, fs):
        fs.write_file("/f", b"0123456789", ROOT_CRED)
        with fs.open("/f", ROOT_CRED) as handle:
            assert handle.read(3) == b"012"
            assert handle.read(3) == b"345"
            handle.seek(0)
            assert handle.read() == b"0123456789"

    def test_write_at_offset(self, fs):
        fs.write_file("/f", b"aaaa", ROOT_CRED)
        with fs.open("/f", ROOT_CRED, read=False, write=True) as handle:
            handle.seek(2)
            handle.write(b"bb")
        assert fs.read_file("/f", ROOT_CRED) == b"aabb"

    def test_write_past_end_zero_fills(self, fs):
        fs.write_file("/f", b"", ROOT_CRED)
        with fs.open("/f", ROOT_CRED, read=False, write=True) as handle:
            handle.seek(4)
            handle.write(b"x")
        assert fs.read_file("/f", ROOT_CRED) == b"\x00\x00\x00\x00x"

    def test_truncate(self, fs):
        fs.write_file("/f", b"0123456789", ROOT_CRED)
        with fs.open("/f", ROOT_CRED, write=True) as handle:
            handle.truncate(4)
        assert fs.read_file("/f", ROOT_CRED) == b"0123"

    def test_closed_handle_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        handle = fs.open("/f", ROOT_CRED)
        handle.close()
        with pytest.raises(BadFileDescriptor):
            handle.read()

    def test_read_on_writeonly_handle_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        handle = fs.open("/f", ROOT_CRED, read=False, write=True)
        with pytest.raises(BadFileDescriptor):
            handle.read()

    def test_write_on_readonly_handle_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        handle = fs.open("/f", ROOT_CRED)
        with pytest.raises(BadFileDescriptor):
            handle.write(b"y")


class TestDirectories:
    def test_mkdir_and_readdir(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        fs.write_file("/d/a", b"1", ROOT_CRED)
        fs.write_file("/d/b", b"2", ROOT_CRED)
        assert fs.readdir("/d", ROOT_CRED) == ["a", "b"]

    def test_mkdir_parents(self, fs):
        fs.mkdir("/a/b/c", ROOT_CRED, parents=True)
        assert fs.stat("/a/b/c", ROOT_CRED).is_dir

    def test_mkdir_existing_raises(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        with pytest.raises(FileExists):
            fs.mkdir("/d", ROOT_CRED)

    def test_mkdir_missing_parent_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.mkdir("/a/b", ROOT_CRED)

    def test_open_directory_raises(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        with pytest.raises(IsADirectory):
            fs.open("/d", ROOT_CRED)

    def test_readdir_on_file_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        with pytest.raises(NotADirectory):
            fs.readdir("/f", ROOT_CRED)

    def test_traverse_through_file_raises(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        with pytest.raises(NotADirectory):
            fs.read_file("/f/child", ROOT_CRED)

    def test_rmdir_empty(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        fs.rmdir("/d", ROOT_CRED)
        assert not fs.exists("/d", ROOT_CRED)

    def test_rmdir_nonempty_raises(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        fs.write_file("/d/f", b"x", ROOT_CRED)
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d", ROOT_CRED)

    def test_unlink_directory_raises(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        with pytest.raises(IsADirectory):
            fs.unlink("/d", ROOT_CRED)


class TestUnlinkRename:
    def test_unlink(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        fs.unlink("/f", ROOT_CRED)
        assert not fs.exists("/f", ROOT_CRED)

    def test_unlink_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/nope", ROOT_CRED)

    def test_rename_file(self, fs):
        fs.write_file("/a", b"data", ROOT_CRED)
        fs.rename("/a", "/b", ROOT_CRED)
        assert not fs.exists("/a", ROOT_CRED)
        assert fs.read_file("/b", ROOT_CRED) == b"data"

    def test_rename_directory(self, fs):
        fs.mkdir("/d", ROOT_CRED)
        fs.write_file("/d/f", b"x", ROOT_CRED)
        fs.rename("/d", "/e", ROOT_CRED)
        assert fs.read_file("/e/f", ROOT_CRED) == b"x"

    def test_rename_over_existing_file(self, fs):
        fs.write_file("/a", b"new", ROOT_CRED)
        fs.write_file("/b", b"old", ROOT_CRED)
        fs.rename("/a", "/b", ROOT_CRED)
        assert fs.read_file("/b", ROOT_CRED) == b"new"


class TestPermissions:
    def test_owner_reads_0600(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/secret", b"s", ALICE, mode=0o600)
        assert fs.read_file("/home/secret", ALICE) == b"s"

    def test_other_cannot_read_0600(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/secret", b"s", ALICE, mode=0o600)
        with pytest.raises(PermissionDenied):
            fs.read_file("/home/secret", BOB)

    def test_root_bypasses_modes(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/secret", b"s", ALICE, mode=0o600)
        assert fs.read_file("/home/secret", ROOT_CRED) == b"s"

    def test_other_can_read_0644(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/pub", b"p", ALICE, mode=0o644)
        assert fs.read_file("/home/pub", BOB) == b"p"

    def test_other_cannot_write_0644(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/pub", b"p", ALICE, mode=0o644)
        with pytest.raises(PermissionDenied):
            fs.append_file("/home/pub", b"x", BOB)

    def test_search_permission_needed_for_traversal(self, fs):
        fs.mkdir("/locked", ROOT_CRED, mode=0o700)
        fs.write_file("/locked/f", b"x", ROOT_CRED, mode=0o666)
        with pytest.raises(PermissionDenied):
            fs.read_file("/locked/f", ALICE)

    def test_non_listable_but_traversable_dir(self, fs):
        # The Google Drive cache pattern: mode 0711 directory.
        fs.mkdir("/cache", ROOT_CRED, mode=0o711)
        fs.write_file("/cache/rand123", b"data", ROOT_CRED, mode=0o644)
        assert fs.read_file("/cache/rand123", ALICE) == b"data"
        with pytest.raises(PermissionDenied):
            fs.readdir("/cache", ALICE)

    def test_cannot_create_in_unwritable_dir(self, fs):
        fs.mkdir("/ro", ROOT_CRED, mode=0o755)
        with pytest.raises(PermissionDenied):
            fs.write_file("/ro/f", b"x", ALICE)

    def test_chown_requires_root(self, fs):
        fs.write_file("/f", b"x", ROOT_CRED)
        with pytest.raises(PermissionDenied):
            fs.chown("/f", ALICE.uid, cred=ALICE)

    def test_chmod_by_owner(self, fs):
        fs.mkdir("/home", ROOT_CRED, mode=0o777)
        fs.write_file("/home/f", b"x", ALICE, mode=0o600)
        fs.chmod("/home/f", 0o644, cred=ALICE)
        assert fs.read_file("/home/f", BOB) == b"x"


class TestReadOnlyFilesystem:
    def test_write_raises(self):
        fs = Filesystem(read_only=True)
        with pytest.raises(ReadOnlyFilesystem):
            fs.write_file("/f", b"x", ROOT_CRED)

    def test_mkdir_raises(self):
        fs = Filesystem(read_only=True)
        with pytest.raises(ReadOnlyFilesystem):
            fs.mkdir("/d", ROOT_CRED)


class TestMetadata:
    def test_mtime_bumps_on_write(self, fs):
        fs.write_file("/f", b"a", ROOT_CRED)
        first = fs.stat("/f", ROOT_CRED).mtime
        fs.append_file("/f", b"b", ROOT_CRED)
        assert fs.stat("/f", ROOT_CRED).mtime > first

    def test_stat_size(self, fs):
        fs.write_file("/f", b"abcde", ROOT_CRED)
        assert fs.stat("/f", ROOT_CRED).size == 5

    def test_tree_size_counts_inodes(self, fs):
        fs.mkdir("/a/b", ROOT_CRED, parents=True)
        fs.write_file("/a/b/f", b"x", ROOT_CRED)
        # root + a + b + f
        assert fs.tree_size() == 4

    def test_walk(self, fs):
        fs.mkdir("/a/b", ROOT_CRED, parents=True)
        fs.write_file("/a/f1", b"x", ROOT_CRED)
        fs.write_file("/a/b/f2", b"y", ROOT_CRED)
        walked = list(fs.walk("/a", ROOT_CRED))
        assert walked[0] == ("/a", ["b"], ["f1"])
        assert walked[1] == ("/a/b", [], ["f2"])
