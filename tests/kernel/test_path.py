"""Path utility tests."""

import pytest

from repro.kernel import path as vpath


class TestNormalize:
    def test_root(self):
        assert vpath.normalize("/") == "/"

    def test_collapses_duplicate_slashes(self):
        assert vpath.normalize("//a///b") == "/a/b"

    def test_strips_trailing_slash(self):
        assert vpath.normalize("/a/b/") == "/a/b"

    def test_resolves_dot(self):
        assert vpath.normalize("/a/./b") == "/a/b"

    def test_resolves_dotdot(self):
        assert vpath.normalize("/a/b/../c") == "/a/c"

    def test_dotdot_past_root_clamps(self):
        assert vpath.normalize("/../../a") == "/a"

    def test_relative_input_becomes_absolute(self):
        assert vpath.normalize("a/b") == "/a/b"


class TestSplitJoin:
    def test_split_root(self):
        assert vpath.split("/") == ()

    def test_split_components(self):
        assert vpath.split("/a/b/c") == ("a", "b", "c")

    def test_join_fragments(self):
        assert vpath.join("/a", "b/c", "d") == "/a/b/c/d"

    def test_join_skips_empty(self):
        assert vpath.join("/a", "", "b") == "/a/b"

    def test_join_single(self):
        assert vpath.join("x") == "/x"


class TestParentBasename:
    def test_parent(self):
        assert vpath.parent("/a/b") == "/a"

    def test_parent_of_top_level(self):
        assert vpath.parent("/a") == "/"

    def test_parent_of_root(self):
        assert vpath.parent("/") == "/"

    def test_basename(self):
        assert vpath.basename("/a/b.txt") == "b.txt"

    def test_basename_of_root(self):
        assert vpath.basename("/") == ""


class TestContainment:
    def test_is_within_self(self):
        assert vpath.is_within("/a/b", "/a/b")

    def test_is_within_child(self):
        assert vpath.is_within("/a/b/c", "/a/b")

    def test_not_within_sibling_prefix(self):
        assert not vpath.is_within("/a/bc", "/a/b")

    def test_everything_within_root(self):
        assert vpath.is_within("/x", "/")

    def test_relative_to(self):
        assert vpath.relative_to("/a/b/c", "/a") == "b/c"

    def test_relative_to_self_is_empty(self):
        assert vpath.relative_to("/a", "/a") == ""

    def test_relative_to_root(self):
        assert vpath.relative_to("/a/b", "/") == "a/b"

    def test_relative_to_outside_raises(self):
        with pytest.raises(ValueError):
            vpath.relative_to("/x", "/a")
