"""Binder transport and network stack tests (the kernel-level guards)."""

import pytest

from repro.errors import FileNotFound, IpcDenied, NetworkUnreachable, ProviderNotFound
from repro.kernel.binder import BinderDriver
from repro.kernel.mounts import MountNamespace
from repro.kernel.network import NetworkStack
from repro.kernel.proc import Process, TaskContext
from repro.kernel.vfs import Credentials, Filesystem


def make_process(app="com.a", initiator=None, uid=1001):
    return Process(
        cred=Credentials(uid=uid),
        namespace=MountNamespace(Filesystem()),
        context=TaskContext(app=app, initiator=initiator),
    )


class TestBinder:
    def test_transact_reaches_handler(self):
        driver = BinderDriver()
        driver.register("echo", lambda txn: ("reply", txn.payload), is_system=True)
        reply = driver.transact(make_process(), "echo", "ping", {"x": 1})
        assert reply == ("reply", {"x": 1})

    def test_unknown_endpoint_raises(self):
        driver = BinderDriver()
        with pytest.raises(ProviderNotFound):
            driver.transact(make_process(), "ghost", "code")

    def test_policy_denies(self):
        driver = BinderDriver()
        driver.register("svc", lambda txn: "ok", owner="com.b")
        driver.install_policy(lambda sender, endpoint: False)
        with pytest.raises(IpcDenied):
            driver.transact(make_process(), "svc", "code")
        assert len(driver.denied_log) == 1

    def test_policy_sees_sender_context(self):
        driver = BinderDriver()
        driver.register("svc", lambda txn: "ok", owner="com.b")
        seen = []
        driver.install_policy(lambda sender, endpoint: seen.append(sender) or True)
        driver.transact(make_process(app="com.x", initiator="com.y"), "svc", "c")
        assert seen[0].app == "com.x"
        assert seen[0].initiator == "com.y"

    def test_transaction_log(self):
        driver = BinderDriver()
        driver.register("svc", lambda txn: None, is_system=True)
        driver.transact(make_process(), "svc", "a")
        driver.transact(make_process(), "svc", "b")
        assert [t.code for t in driver.transaction_log] == ["a", "b"]

    def test_unregister(self):
        driver = BinderDriver()
        driver.register("svc", lambda txn: None)
        driver.unregister("svc")
        with pytest.raises(ProviderNotFound):
            driver.endpoint("svc")


class TestNetwork:
    def test_initiator_fetches(self):
        stack = NetworkStack()
        stack.publish("example.com", "page", b"content")
        socket = stack.connect(make_process(), "example.com")
        assert socket.fetch("page") == b"content"

    def test_delegate_gets_enetunreach(self):
        stack = NetworkStack()
        stack.publish("example.com", "page", b"content")
        with pytest.raises(NetworkUnreachable):
            stack.connect(make_process(initiator="com.init"), "example.com")

    def test_denied_attempts_logged(self):
        stack = NetworkStack()
        stack.add_host("example.com")
        with pytest.raises(NetworkUnreachable):
            stack.connect(make_process(initiator="com.init"), "example.com")
        assert len(stack.denied_attempts()) == 1
        assert stack.denied_attempts()[0].context == "com.a^com.init"

    def test_unknown_host(self):
        stack = NetworkStack()
        with pytest.raises(FileNotFound):
            stack.connect(make_process(), "nowhere.invalid")

    def test_egress_recorded_for_leak_audit(self):
        stack = NetworkStack()
        stack.add_host("evil.com")
        socket = stack.connect(make_process(), "evil.com")
        socket.send(b"...THE-SECRET...")
        assert stack.leaked_to_network(b"THE-SECRET")
        assert not stack.leaked_to_network(b"OTHER")

    def test_missing_resource(self):
        stack = NetworkStack()
        stack.add_host("example.com")
        socket = stack.connect(make_process(), "example.com")
        with pytest.raises(FileNotFound):
            socket.fetch("missing")

    def test_self_initiator_is_not_delegate_for_network(self):
        stack = NetworkStack()
        stack.add_host("example.com")
        process = make_process(app="com.a", initiator="com.a")
        assert stack.connect(process, "example.com")
