"""Union filesystem tests: branch priority, copy-up, whiteouts, opaque
directories — the semantics Maxoid's views are built on."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    PermissionDenied,
    ReadOnlyFilesystem,
)
from repro.kernel.aufs import AufsMount, Branch, OPAQUE_MARKER, WHITEOUT_PREFIX
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED

APP = Credentials(uid=1001)
OTHER = Credentials(uid=1002)


@pytest.fixture
def lower():
    fs = Filesystem(label="lower")
    fs.mkdir("/docs", ROOT_CRED, mode=0o777)
    fs.write_file("/docs/a.txt", b"lower-a", ROOT_CRED, mode=0o666)
    fs.write_file("/docs/b.txt", b"lower-b", ROOT_CRED, mode=0o666)
    fs.write_file("/top.txt", b"lower-top", ROOT_CRED, mode=0o666)
    return fs


@pytest.fixture
def upper():
    return Filesystem(label="upper")


@pytest.fixture
def union(lower, upper):
    return AufsMount(
        [
            Branch(upper, "/", writable=True, label="up"),
            Branch(lower, "/", writable=False, label="low"),
        ],
        label="test-union",
    )


class TestLookupPriority:
    def test_reads_fall_through_to_lower(self, union):
        assert union.read_file("/docs/a.txt", APP) == b"lower-a"

    def test_upper_shadows_lower(self, union, upper):
        upper.mkdir("/docs", ROOT_CRED)
        upper.write_file("/docs/a.txt", b"upper-a", ROOT_CRED)
        assert union.read_file("/docs/a.txt", APP) == b"upper-a"

    def test_missing_raises(self, union):
        with pytest.raises(FileNotFound):
            union.read_file("/docs/nope", APP)

    def test_readdir_merges_branches(self, union, upper):
        upper.mkdir("/docs", ROOT_CRED)
        upper.write_file("/docs/c.txt", b"upper-c", ROOT_CRED)
        assert union.readdir("/docs", APP) == ["a.txt", "b.txt", "c.txt"]

    def test_readdir_no_duplicates(self, union, upper):
        upper.mkdir("/docs", ROOT_CRED)
        upper.write_file("/docs/a.txt", b"upper-a", ROOT_CRED)
        assert union.readdir("/docs", APP) == ["a.txt", "b.txt"]

    def test_file_in_upper_shadows_lower_dir(self, union, upper):
        upper.write_file("/docs", b"now a file", ROOT_CRED)
        with pytest.raises(FileNotFound):
            union.read_file("/docs/a.txt", APP)


class TestCopyUp:
    def test_write_copies_up(self, union, lower, upper):
        union.append_file("/docs/a.txt", b"+app", APP)
        assert union.read_file("/docs/a.txt", APP) == b"lower-a+app"
        assert lower.read_file("/docs/a.txt", ROOT_CRED) == b"lower-a"
        assert upper.read_file("/docs/a.txt", ROOT_CRED) == b"lower-a+app"

    def test_copy_up_counted(self, union):
        assert union.copy_up_count == 0
        union.append_file("/docs/a.txt", b"x", APP)
        assert union.copy_up_count == 1
        assert union.copy_up_bytes == len(b"lower-a")

    def test_second_write_no_copy_up(self, union):
        union.append_file("/docs/a.txt", b"x", APP)
        union.append_file("/docs/a.txt", b"y", APP)
        assert union.copy_up_count == 1

    def test_truncate_write_replaces(self, union, lower):
        union.write_file("/docs/a.txt", b"new", APP)
        assert union.read_file("/docs/a.txt", APP) == b"new"
        assert lower.read_file("/docs/a.txt", ROOT_CRED) == b"lower-a"

    def test_copy_up_owner_is_writer(self, union, upper):
        union.append_file("/docs/a.txt", b"x", APP)
        assert upper.stat("/docs/a.txt", ROOT_CRED).uid == APP.uid

    def test_create_new_file_lands_in_upper(self, union, upper, lower):
        union.write_file("/docs/new.txt", b"fresh", APP)
        assert upper.read_file("/docs/new.txt", ROOT_CRED) == b"fresh"
        assert not lower.exists("/docs/new.txt", ROOT_CRED)

    def test_parent_dirs_replicated_on_copy_up(self, union, lower, upper):
        lower.mkdir("/deep/nest", ROOT_CRED, parents=True)
        lower.write_file("/deep/nest/f", b"v", ROOT_CRED, mode=0o666)
        union.append_file("/deep/nest/f", b"!", APP)
        assert upper.read_file("/deep/nest/f", ROOT_CRED) == b"v!"

    def test_no_writable_branch_raises(self, lower):
        union = AufsMount([Branch(lower, "/", writable=False)])
        with pytest.raises(ReadOnlyFilesystem):
            union.write_file("/x", b"y", APP)

    def test_two_writable_branches_rejected(self, lower, upper):
        with pytest.raises(ValueError):
            AufsMount(
                [Branch(upper, "/", writable=True), Branch(lower, "/", writable=True)]
            )


class TestWhiteouts:
    def test_unlink_lower_file_creates_whiteout(self, union, upper, lower):
        union.unlink("/docs/a.txt", APP)
        assert not union.exists("/docs/a.txt", APP)
        assert lower.exists("/docs/a.txt", ROOT_CRED)
        assert upper.exists(f"/docs/{WHITEOUT_PREFIX}a.txt", ROOT_CRED)

    def test_whiteout_hides_in_readdir(self, union):
        union.unlink("/docs/a.txt", APP)
        assert union.readdir("/docs", APP) == ["b.txt"]

    def test_unlink_upper_only_file_leaves_no_whiteout(self, union, upper):
        union.write_file("/docs/new.txt", b"x", APP)
        union.unlink("/docs/new.txt", APP)
        assert not upper.exists(f"/docs/{WHITEOUT_PREFIX}new.txt", ROOT_CRED)

    def test_unlink_shadowing_file_still_hides_lower(self, union, upper):
        union.append_file("/docs/a.txt", b"x", APP)  # copy-up
        union.unlink("/docs/a.txt", APP)
        assert not union.exists("/docs/a.txt", APP)

    def test_recreate_after_unlink(self, union):
        union.unlink("/docs/a.txt", APP)
        union.write_file("/docs/a.txt", b"reborn", APP)
        assert union.read_file("/docs/a.txt", APP) == b"reborn"

    def test_whiteout_entries_never_listed(self, union):
        union.unlink("/docs/a.txt", APP)
        for name in union.readdir("/docs", APP):
            assert not name.startswith(WHITEOUT_PREFIX)


class TestOpaqueDirectories:
    def test_rmdir_then_mkdir_hides_lower_contents(self, union, lower):
        # Remove the merged dir (must be empty first).
        union.unlink("/docs/a.txt", APP)
        union.unlink("/docs/b.txt", APP)
        union.rmdir("/docs", APP)
        assert not union.exists("/docs", APP)
        union.mkdir("/docs", APP)
        assert union.readdir("/docs", APP) == []
        # Lower still has its files.
        assert lower.exists("/docs/a.txt", ROOT_CRED)

    def test_rmdir_nonempty_raises(self, union):
        with pytest.raises(DirectoryNotEmpty):
            union.rmdir("/docs", APP)


class TestRename:
    def test_rename_lower_file(self, union, lower):
        union.rename("/docs/a.txt", "/docs/renamed.txt", APP)
        assert union.read_file("/docs/renamed.txt", APP) == b"lower-a"
        assert not union.exists("/docs/a.txt", APP)
        assert lower.exists("/docs/a.txt", ROOT_CRED)  # lower untouched

    def test_rename_directory(self, union):
        union.rename("/docs", "/papers", APP)
        assert union.read_file("/papers/a.txt", APP) == b"lower-a"
        assert not union.exists("/docs", APP)


class TestPermissionsAndTheMaxoidPatch:
    def test_union_enforces_lower_modes_by_default(self, lower, upper):
        lower.mkdir("/priv", ROOT_CRED, mode=0o755)
        lower.write_file("/priv/s", b"secret", ROOT_CRED, mode=0o600)
        union = AufsMount(
            [Branch(upper, "/", writable=True), Branch(lower, "/", writable=False)]
        )
        with pytest.raises(PermissionDenied):
            union.read_file("/priv/s", APP)

    def test_always_allow_read_bypasses(self, lower, upper):
        lower.mkdir("/priv", ROOT_CRED, mode=0o755)
        lower.write_file("/priv/s", b"secret", ROOT_CRED, mode=0o600)
        union = AufsMount(
            [Branch(upper, "/", writable=True), Branch(lower, "/", writable=False)],
            always_allow_read=True,
        )
        assert union.read_file("/priv/s", APP) == b"secret"

    def test_always_allow_read_permits_copy_up_write(self, lower, upper):
        lower.write_file("/owned", b"orig", ROOT_CRED, mode=0o600)
        union = AufsMount(
            [Branch(upper, "/", writable=True), Branch(lower, "/", writable=False)],
            always_allow_read=True,
        )
        union.append_file("/owned", b"+d", APP)
        assert union.read_file("/owned", APP) == b"orig+d"
        assert lower.read_file("/owned", ROOT_CRED) == b"orig"


class TestSingleBranchMount:
    """Initiators get single-branch mounts (paper Table 2)."""

    def test_single_writable_branch_reads_and_writes(self, upper):
        union = AufsMount([Branch(upper, "/sub", writable=True, label="pub")])
        union.write_file("/f", b"x", APP)
        assert union.read_file("/f", APP) == b"x"
        assert upper.read_file("/sub/f", ROOT_CRED) == b"x"

    def test_describe(self, upper, lower):
        union = AufsMount(
            [
                Branch(upper, "/", writable=True, label="A/tmp"),
                Branch(lower, "/", writable=False, label="pub"),
            ]
        )
        assert union.describe() == ["A/tmp(rw)", "pub(ro)"]

    def test_branch_root_subdirectory(self, lower):
        lower.mkdir("/only/this", ROOT_CRED, parents=True)
        lower.write_file("/only/this/f", b"v", ROOT_CRED, mode=0o666)
        union = AufsMount([Branch(lower, "/only/this", writable=False)])
        assert union.read_file("/f", ROOT_CRED) == b"v"
        with pytest.raises(FileNotFound):
            union.read_file("/only", ROOT_CRED)
