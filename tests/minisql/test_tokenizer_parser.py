"""Tokenizer and parser tests for the mini SQL engine."""

import pytest

from repro.errors import SqlSyntaxError
from repro.minisql import ast_nodes as ast
from repro.minisql.parser import parse
from repro.minisql.tokens import tokenize


class TestTokenizer:
    def test_keywords_upcased(self):
        kinds = [(t.kind, t.value) for t in tokenize("select From WHERE")]
        assert kinds[:3] == [("KEYWORD", "SELECT"), ("KEYWORD", "FROM"), ("KEYWORD", "WHERE")]

    def test_identifiers_preserved(self):
        tokens = tokenize("myTable _id")
        assert tokens[0].value == "myTable"
        assert tokens[1].value == "_id"

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"

    def test_quoted_identifier(self):
        tokens = tokenize('"select"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "select"

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment here\n 1")
        assert [t.value for t in tokens[:2]] == ["SELECT", "1"]

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("a <> b <= c || d")]
        assert "<>" in values and "<=" in values and "||" in values

    def test_params(self):
        tokens = tokenize("? , ?")
        assert tokens[0].value == "?"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestParserSelect:
    def test_simple_select(self):
        statement = parse("SELECT a, b FROM t")
        assert isinstance(statement, ast.Select)
        core = statement.cores[0]
        assert [i.expr.name for i in core.items] == ["a", "b"]
        assert core.source.name == "t"

    def test_star(self):
        core = parse("SELECT * FROM t").cores[0]
        assert isinstance(core.items[0].expr, ast.Star)

    def test_where_precedence(self):
        core = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").cores[0]
        assert core.where.op == "OR"
        assert core.where.right.op == "AND"

    def test_aliases(self):
        core = parse("SELECT a AS x, b y FROM t z").cores[0]
        assert core.items[0].alias == "x"
        assert core.items[1].alias == "y"
        assert core.source.alias == "z"

    def test_order_by_limit_offset(self):
        statement = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit.value == 5
        assert statement.offset.value == 2

    def test_union_all(self):
        statement = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert statement.is_compound
        assert len(statement.cores) == 2

    def test_plain_union_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t UNION SELECT a FROM u")

    def test_in_subquery(self):
        core = parse("SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)").cores[0]
        assert isinstance(core.where, ast.InSelect)
        assert core.where.negated

    def test_exists(self):
        core = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)").cores[0]
        assert isinstance(core.where, ast.ExistsSelect)

    def test_join_on(self):
        core = parse("SELECT * FROM a JOIN b ON a.id = b.id").cores[0]
        assert len(core.joins) == 1
        assert core.joins[0].kind == "INNER"

    def test_comma_join(self):
        core = parse("SELECT * FROM a, b WHERE a.id = b.id").cores[0]
        assert core.joins[0].kind == "CROSS"

    def test_group_by_having(self):
        core = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1").cores[0]
        assert len(core.group_by) == 1
        assert core.having is not None

    def test_function_calls(self):
        core = parse("SELECT COUNT(*), MAX(x), length(s) FROM t").cores[0]
        assert core.items[0].expr.star
        assert core.items[1].expr.name == "max"

    def test_case_expression(self):
        core = parse("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t").cores[0]
        assert isinstance(core.items[0].expr, ast.CaseExpr)

    def test_params_numbered(self):
        core = parse("SELECT a FROM t WHERE a = ? AND b = ?").cores[0]
        assert core.where.left.right.index == 0
        assert core.where.right.right.index == 1

    def test_subquery_in_from(self):
        core = parse("SELECT x FROM (SELECT a AS x FROM t) sub").cores[0]
        assert core.source.subquery is not None
        assert core.source.alias == "sub"

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t banana extra")


class TestParserDml:
    def test_insert(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ["a", "b"]
        assert len(statement.values) == 1

    def test_insert_multi_row(self):
        statement = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(statement.values) == 3

    def test_insert_or_replace(self):
        assert parse("INSERT OR REPLACE INTO t (a) VALUES (1)").or_replace

    def test_insert_select(self):
        statement = parse("INSERT INTO t (a) SELECT b FROM u")
        assert statement.select is not None

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = ? WHERE c = 2")
        assert isinstance(statement, ast.Update)
        assert [c for c, _ in statement.assignments] == ["a", "b"]

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.Delete)

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestParserDdl:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "n INTEGER DEFAULT 0, u TEXT UNIQUE)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null
        assert statement.columns[2].default.value == 0
        assert statement.columns[3].unique

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY)").if_not_exists

    def test_create_view(self):
        statement = parse("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, ast.CreateView)
        assert statement.name == "v"

    def test_create_trigger(self):
        statement = parse(
            "CREATE TRIGGER tr INSTEAD OF UPDATE ON v BEGIN "
            "INSERT INTO d (a) VALUES (NEW.a); "
            "DELETE FROM d WHERE a = OLD.a; END"
        )
        assert isinstance(statement, ast.CreateTrigger)
        assert statement.event == "UPDATE"
        assert len(statement.body) == 2

    def test_trigger_body_select_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TRIGGER tr INSTEAD OF INSERT ON v BEGIN SELECT 1; END")

    def test_drop(self):
        statement = parse("DROP TABLE IF EXISTS t")
        assert isinstance(statement, ast.DropStatement)
        assert statement.kind == "TABLE"
        assert statement.if_exists

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("VACUUM")
