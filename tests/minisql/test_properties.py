"""Property-based tests for the mini SQL engine.

Invariants:

1. Insert/read round-trip: what goes in through ``INSERT`` comes back out
   of ``SELECT`` unchanged.
2. The COW-view algebra: for any interleaving of writes through a
   Figure 6-style view, the view equals the reference computation
   (primary rows minus delta'd ids, plus non-whiteout delta rows), and
   the primary table never changes.
3. ORDER BY produces a total order consistent with the comparator.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.minisql import Database
from repro.minisql.expr import sql_compare

texts = st.text(alphabet="abcxyz ,'", min_size=0, max_size=12)
numbers = st.integers(min_value=-1_000_000, max_value=1_000_000)


class TestRoundTrip:
    @given(rows=st.lists(st.tuples(texts, numbers), min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_insert_select_roundtrip(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (_id INTEGER PRIMARY KEY, s TEXT, n INTEGER)")
        for s, n in rows:
            db.execute("INSERT INTO t (s, n) VALUES (?, ?)", [s, n])
        result = db.execute("SELECT s, n FROM t ORDER BY _id")
        assert result.rows == rows

    @given(rows=st.lists(numbers, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_aggregates_match_python(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (_id INTEGER PRIMARY KEY, n INTEGER)")
        for n in rows:
            db.execute("INSERT INTO t (n) VALUES (?)", [n])
        got = db.execute("SELECT COUNT(n), SUM(n), MIN(n), MAX(n) FROM t").rows[0]
        assert got == (len(rows), sum(rows), min(rows), max(rows))

    @given(rows=st.lists(numbers, min_size=0, max_size=20), pivot=numbers)
    @settings(max_examples=50, deadline=None)
    def test_where_filter_matches_python(self, rows, pivot):
        db = Database()
        db.execute("CREATE TABLE t (_id INTEGER PRIMARY KEY, n INTEGER)")
        for n in rows:
            db.execute("INSERT INTO t (n) VALUES (?)", [n])
        got = sorted(r[0] for r in db.execute("SELECT n FROM t WHERE n > ?", [pivot]).rows)
        assert got == sorted(n for n in rows if n > pivot)


class TestOrdering:
    @given(rows=st.lists(st.one_of(numbers, texts, st.none()), min_size=0, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_order_by_is_sorted_by_comparator(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (_id INTEGER PRIMARY KEY, v)")
        for v in rows:
            db.execute("INSERT INTO t (v) VALUES (?)", [v])
        got = [r[0] for r in db.execute("SELECT v FROM t ORDER BY v").rows]
        for left, right in zip(got, got[1:]):
            assert sql_compare(left, right) <= 0


# --- COW view algebra -------------------------------------------------------


@st.composite
def cow_workload(draw):
    primary = draw(
        st.lists(texts, min_size=0, max_size=6).map(
            lambda vs: [(i + 1, v) for i, v in enumerate(vs)]
        )
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("update"), st.integers(1, 8), texts),
                st.tuples(st.just("delete"), st.integers(1, 8), st.just("")),
                st.tuples(st.just("insert"), st.just(0), texts),
            ),
            min_size=0,
            max_size=12,
        )
    )
    return primary, ops


class TestCowViewAlgebra:
    @given(workload=cow_workload())
    @settings(max_examples=50, deadline=None)
    def test_view_matches_reference_model(self, workload):
        primary, ops = workload
        db = Database()
        db.execute("CREATE TABLE tab (_id INTEGER PRIMARY KEY, data TEXT)")
        db.execute(
            "CREATE TABLE tab_delta (_id INTEGER PRIMARY KEY, data TEXT, "
            "_whiteout INTEGER DEFAULT 0)"
        )
        db.table("tab_delta").set_autoincrement_base(10_000_001)
        for row_id, value in primary:
            db.execute("INSERT INTO tab (_id, data) VALUES (?, ?)", [row_id, value])
        db.execute(
            "CREATE VIEW tab_view AS "
            "SELECT _id, data FROM tab WHERE _id NOT IN (SELECT _id FROM tab_delta) "
            "UNION ALL SELECT _id, data FROM tab_delta WHERE _whiteout = 0"
        )
        db.execute(
            "CREATE TRIGGER tv_u INSTEAD OF UPDATE ON tab_view BEGIN "
            "INSERT OR REPLACE INTO tab_delta (_id, data, _whiteout) "
            "VALUES (OLD._id, NEW.data, 0); END"
        )
        db.execute(
            "CREATE TRIGGER tv_d INSTEAD OF DELETE ON tab_view BEGIN "
            "INSERT OR REPLACE INTO tab_delta (_id, data, _whiteout) "
            "VALUES (OLD._id, OLD.data, 1); END"
        )
        db.execute(
            "CREATE TRIGGER tv_i INSTEAD OF INSERT ON tab_view BEGIN "
            "INSERT INTO tab_delta (_id, data, _whiteout) VALUES (NEW._id, NEW.data, 0); END"
        )
        # Reference model: the delegate's view as a dict.
        model = dict(primary)
        next_volatile = [10_000_001]
        for op, row_id, value in ops:
            if op == "update":
                if row_id in model:
                    db.execute("UPDATE tab_view SET data = ? WHERE _id = ?", [value, row_id])
                    model[row_id] = value
            elif op == "delete":
                if row_id in model:
                    db.execute("DELETE FROM tab_view WHERE _id = ?", [row_id])
                    del model[row_id]
            else:
                db.execute("INSERT INTO tab_view (data) VALUES (?)", [value])
                model[next_volatile[0]] = value
                next_volatile[0] += 1
        got = dict(db.execute("SELECT _id, data FROM tab_view").rows)
        assert got == model
        # The primary table is never modified by view writes.
        assert dict(db.execute("SELECT _id, data FROM tab").rows) == dict(primary)
