"""ResultSet helper tests."""

from repro.minisql import Database
from repro.minisql.engine import ResultSet


class TestResultSet:
    def make(self):
        return ResultSet(columns=["a", "b"], rows=[(1, "x"), (2, "y")], rowcount=2)

    def test_dicts(self):
        assert self.make().dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_scalar(self):
        assert self.make().scalar() == 1
        assert ResultSet().scalar() is None

    def test_len_and_iter(self):
        result = self.make()
        assert len(result) == 2
        assert list(result) == [(1, "x"), (2, "y")]

    def test_empty_defaults(self):
        empty = ResultSet()
        assert empty.columns == []
        assert empty.rows == []
        assert empty.rowcount == 0
        assert empty.lastrowid is None

    def test_column_order_preserved_through_engine(self):
        db = Database()
        db.execute("CREATE TABLE t (z INTEGER PRIMARY KEY, a TEXT, m TEXT)")
        db.execute("INSERT INTO t (a, m) VALUES ('1', '2')")
        result = db.execute("SELECT m, a, z FROM t")
        assert result.columns == ["m", "a", "z"]
        assert result.rows == [("2", "1", 1)]

    def test_alias_column_names(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (7)")
        result = db.execute("SELECT id AS identifier, id * 2 AS doubled FROM t")
        assert result.columns == ["identifier", "doubled"]

    def test_expression_column_gets_generated_name(self):
        db = Database()
        result = db.execute("SELECT 1 + 1")
        assert result.columns == ["col1"]

    def test_function_column_name(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        result = db.execute("SELECT COUNT(*) FROM t")
        assert result.columns == ["count(*)"]
