"""Tests for the EXPLAIN-style plan description."""

import pytest

from repro.minisql import Database
from repro.minisql.planner import FLATTEN_NEVER_WITH_ORDER_BY


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE a (_id INTEGER PRIMARY KEY, v TEXT)")
    database.execute("CREATE TABLE b (_id INTEGER PRIMARY KEY, v TEXT)")
    database.execute("INSERT INTO a (v) VALUES ('x'), ('y')")
    database.execute(
        "CREATE VIEW u AS SELECT _id, v FROM a UNION ALL SELECT _id, v FROM b"
    )
    database.execute("CREATE VIEW simple AS SELECT v FROM a")
    return database


class TestExplain:
    def test_table_scan_with_row_count(self, db):
        plan = db.explain("SELECT v FROM a")
        assert plan == ["SCAN a (2 rows)"]

    def test_flattened_view(self, db):
        plan = db.explain("SELECT v FROM u WHERE v = 'x'")
        assert plan[0] == "VIEW u (FLATTEN)"
        assert "SCAN a (2 rows)" in [line.strip() for line in plan]

    def test_materialized_view_under_3711(self, db):
        old = Database(sqlite_emulation=FLATTEN_NEVER_WITH_ORDER_BY)
        old.execute("CREATE TABLE a (_id INTEGER PRIMARY KEY, v TEXT)")
        old.execute("CREATE TABLE b (_id INTEGER PRIMARY KEY, v TEXT)")
        old.execute("CREATE VIEW u AS SELECT _id, v FROM a UNION ALL SELECT _id, v FROM b")
        plan = old.explain("SELECT v FROM u ORDER BY _id")
        assert plan[0] == "VIEW u (MATERIALIZE)"

    def test_footnote5_workaround_visible_in_plan(self, db):
        # Non-subset ORDER BY: materialize; widening the projection flips
        # it back to the flattened plan — the proxy's exact trick.
        db_386 = db
        materializing = db_386.explain("SELECT v FROM u ORDER BY _id")
        flattened = db_386.explain("SELECT v, _id FROM u ORDER BY _id")
        assert materializing[0] == "VIEW u (MATERIALIZE)"
        assert flattened[0] == "VIEW u (FLATTEN)"

    def test_simple_view_expands(self, db):
        plan = db.explain("SELECT v FROM simple")
        assert plan[0] == "VIEW simple (EXPAND)"

    def test_order_by_and_limit_noted(self, db):
        plan = db.explain("SELECT v FROM a ORDER BY v LIMIT 1")
        assert "ORDER BY 1 key(s)" in plan
        assert "LIMIT" in plan

    def test_subquery_in_from(self, db):
        plan = db.explain("SELECT x FROM (SELECT v AS x FROM a) sub")
        assert plan[0] == "SUBQUERY sub:"
        assert plan[1].strip() == "SCAN a (2 rows)"

    def test_constant_select(self, db):
        assert db.explain("SELECT 1") == ["CONSTANT ROW"]

    def test_non_select(self, db):
        assert db.explain("DELETE FROM a") == ["DELETE"]
