"""Edge-case and semantics tests for the mini SQL engine."""

import pytest

from repro.errors import SqlError, SqlNameError, SqlSyntaxError
from repro.minisql import Database


@pytest.fixture
def db():
    return Database()


class TestThreeValuedLogic:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("NULL AND 0", 0),        # false short-circuits
            ("NULL AND 1", None),
            ("NULL OR 1", 1),         # true short-circuits
            ("NULL OR 0", None),
            ("NOT NULL", None),
            ("NULL = NULL", None),
            ("NULL + 1", None),
            ("NULL || 'x'", None),
        ],
    )
    def test_truth_table(self, db, expr, expected):
        assert db.execute(f"SELECT {expr}").scalar() == expected

    def test_where_treats_unknown_as_false(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t (v) VALUES (NULL), (1)")
        assert len(db.execute("SELECT id FROM t WHERE v > 0").rows) == 1

    def test_in_list_with_null_member(self, db):
        # 2 IN (1, NULL) is unknown, not false.
        assert db.execute("SELECT 2 IN (1, NULL)").scalar() is None
        assert db.execute("SELECT 1 IN (1, NULL)").scalar() == 1


class TestTypeCoercion:
    def test_integer_float_equality(self, db):
        assert db.execute("SELECT 1 = 1.0").scalar() == 1

    def test_cross_type_ordering(self, db):
        # SQLite ordering: numeric < text < blob.
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v)")
        db.execute("INSERT INTO t (v) VALUES (?), (?), (?)", ["text", 5, b"blob"])
        ordered = [r[0] for r in db.execute("SELECT v FROM t ORDER BY v").rows]
        assert ordered == [5, "text", b"blob"]

    def test_integer_division_truncates(self, db):
        assert db.execute("SELECT 7 / 2").scalar() == 3
        assert db.execute("SELECT -7 / 2").scalar() == -3  # truncate toward zero

    def test_float_division(self, db):
        assert db.execute("SELECT 7.0 / 2").scalar() == 3.5

    def test_modulo(self, db):
        assert db.execute("SELECT 7 % 3").scalar() == 1
        assert db.execute("SELECT 7 % 0").scalar() is None


class TestStringsAndQuoting:
    def test_embedded_quote(self, db):
        assert db.execute("SELECT 'it''s'").scalar() == "it's"

    def test_quoted_identifier_keyword_column(self, db):
        db.execute('CREATE TABLE t (id INTEGER PRIMARY KEY, "select" TEXT)')
        db.execute('INSERT INTO t ("select") VALUES (?)', ["v"])
        assert db.execute('SELECT "select" FROM t').scalar() == "v"

    def test_text_as_column_name(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, text TEXT)")
        db.execute("INSERT INTO t (text) VALUES ('hello')")
        assert db.execute("SELECT text FROM t WHERE text = 'hello'").scalar() == "hello"

    def test_like_escaping_behaviour(self, db):
        assert db.execute("SELECT 'a.c' LIKE 'a.c'").scalar() == 1
        assert db.execute("SELECT 'abc' LIKE 'a.c'").scalar() == 0  # '.' is literal
        assert db.execute("SELECT 'ABC' LIKE 'abc'").scalar() == 1  # case-insensitive

    def test_like_underscore(self, db):
        assert db.execute("SELECT 'cat' LIKE 'c_t'").scalar() == 1


class TestCompoundAndLimits:
    def test_union_all_preserves_duplicates(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO t (v) VALUES (1)")
        result = db.execute("SELECT v FROM t UNION ALL SELECT v FROM t")
        assert result.rows == [(1,), (1,)]

    def test_union_all_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        with pytest.raises(SqlError):
            db.execute("SELECT id, v FROM t UNION ALL SELECT id FROM t")

    def test_limit_zero(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        assert db.execute("SELECT * FROM t LIMIT 0").rows == []

    def test_offset_past_end(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        assert db.execute("SELECT * FROM t LIMIT 10 OFFSET 5").rows == []

    def test_limit_comma_form(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.executemany("INSERT INTO t (id) VALUES (?)", [(i,) for i in range(1, 6)])
        # LIMIT offset, count
        result = db.execute("SELECT id FROM t ORDER BY id LIMIT 1, 2")
        assert result.rows == [(2,), (3,)]

    def test_order_by_multiple_keys(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
        db.executemany(
            "INSERT INTO t (a, b) VALUES (?, ?)", [(1, 2), (1, 1), (0, 9)]
        )
        result = db.execute("SELECT a, b FROM t ORDER BY a, b DESC")
        assert result.rows == [(0, 9), (1, 2), (1, 1)]


class TestSubqueries:
    def test_in_select_empty_result(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        assert db.execute("SELECT id FROM t WHERE id IN (SELECT id FROM u)").rows == []
        assert len(db.execute("SELECT id FROM t WHERE id NOT IN (SELECT id FROM u)").rows) == 1

    def test_exists_correlated(self, db):
        db.execute("CREATE TABLE parents (id INTEGER PRIMARY KEY, name TEXT)")
        db.execute("CREATE TABLE kids (id INTEGER PRIMARY KEY, parent INTEGER)")
        db.executemany("INSERT INTO parents (name) VALUES (?)", [("a",), ("b",)])
        db.execute("INSERT INTO kids (parent) VALUES (1)")
        result = db.execute(
            "SELECT name FROM parents p WHERE EXISTS "
            "(SELECT 1 FROM kids WHERE kids.parent = p.id)"
        )
        assert result.rows == [("a",)]

    def test_uncorrelated_subquery_cached_once(self, db):
        db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY)")
        db.executemany("INSERT INTO big (id) VALUES (?)", [(i,) for i in range(1, 101)])
        db.execute("CREATE TABLE small (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO small (id) VALUES (50)")
        db.stats.reset()
        db.execute("SELECT COUNT(*) FROM big WHERE id NOT IN (SELECT id FROM small)")
        # The subquery scanned `small` once, not once per outer row.
        assert db.stats.rows_scanned <= 100 + 1 + 5

    def test_scalar_subquery_empty_is_null(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        assert db.execute("SELECT (SELECT id FROM t)").scalar() is None

    def test_from_subquery(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        db.executemany("INSERT INTO t (v) VALUES (?)", [(3,), (1,), (2,)])
        result = db.execute(
            "SELECT doubled FROM (SELECT v * 2 AS doubled FROM t) sub WHERE doubled > 3"
        )
        assert sorted(r[0] for r in result.rows) == [4, 6]


class TestErrors:
    def test_too_few_parameters(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM t WHERE v = ? AND id = ?", ["only-one"])

    def test_insert_into_unknown_column(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(SqlNameError):
            db.execute("INSERT INTO t (ghost) VALUES (1)")

    def test_update_unknown_column(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        with pytest.raises(SqlNameError):
            db.execute("UPDATE t SET ghost = 1")

    def test_aggregate_in_where_rejected(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("INSERT INTO t (id) VALUES (1)")
        with pytest.raises(SqlError):
            db.execute("SELECT id FROM t WHERE COUNT(*) > 0")

    def test_duplicate_table(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(SqlNameError):
            db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        db.execute("CREATE TABLE IF NOT EXISTS t (id INTEGER PRIMARY KEY)")  # ok

    def test_drop_missing_without_if_exists(self, db):
        with pytest.raises(SqlNameError):
            db.execute("DROP TABLE missing")
        db.execute("DROP TABLE IF EXISTS missing")  # ok


class TestStatementCache:
    def test_repeated_statements_reuse_parse(self, db):
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        sql = "INSERT INTO t (v) VALUES (?)"
        for index in range(5):
            db.execute(sql, [f"v{index}"])
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 5
        assert sql in db._statement_cache

    def test_cache_eviction_at_limit(self, db):
        db._cache_limit = 4
        for index in range(6):
            db.execute(f"SELECT {index}")
        assert len(db._statement_cache) <= 4
