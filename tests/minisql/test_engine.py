"""Engine tests: SELECT semantics, DML, constraints, aggregates."""

import pytest

from repro.errors import SqlError, SqlIntegrityError, SqlNameError
from repro.minisql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER DEFAULT 1)"
    )
    database.executemany(
        "INSERT INTO words (word, frequency) VALUES (?, ?)",
        [("alpha", 3), ("beta", 1), ("gamma", 2)],
    )
    return database


class TestSelect:
    def test_select_all(self, db):
        result = db.execute("SELECT * FROM words ORDER BY _id")
        assert result.columns == ["_id", "word", "frequency"]
        assert result.rows[0] == (1, "alpha", 3)

    def test_where_parameter(self, db):
        result = db.execute("SELECT word FROM words WHERE frequency > ?", [1])
        assert sorted(r[0] for r in result.rows) == ["alpha", "gamma"]

    def test_order_by_desc(self, db):
        result = db.execute("SELECT word FROM words ORDER BY frequency DESC")
        assert [r[0] for r in result.rows] == ["alpha", "gamma", "beta"]

    def test_order_by_ordinal(self, db):
        result = db.execute("SELECT word, frequency FROM words ORDER BY 2")
        assert [r[0] for r in result.rows] == ["beta", "gamma", "alpha"]

    def test_order_by_unprojected_column(self, db):
        result = db.execute("SELECT word FROM words ORDER BY frequency")
        assert [r[0] for r in result.rows] == ["beta", "gamma", "alpha"]

    def test_limit_offset(self, db):
        result = db.execute("SELECT word FROM words ORDER BY _id LIMIT 1 OFFSET 1")
        assert result.rows == [("beta",)]

    def test_expression_projection(self, db):
        result = db.execute("SELECT frequency * 10 AS f10 FROM words WHERE word = 'beta'")
        assert result.columns == ["f10"]
        assert result.rows == [(10,)]

    def test_distinct(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES ('alpha', 3)")
        result = db.execute("SELECT DISTINCT word, frequency FROM words WHERE word = 'alpha'")
        assert len(result.rows) == 1

    def test_like(self, db):
        result = db.execute("SELECT word FROM words WHERE word LIKE '%a'")
        assert sorted(r[0] for r in result.rows) == ["alpha", "beta", "gamma"]
        result = db.execute("SELECT word FROM words WHERE word LIKE 'al%'")
        assert [r[0] for r in result.rows] == ["alpha"]

    def test_glob_case_sensitive(self, db):
        assert db.execute("SELECT word FROM words WHERE word GLOB 'Al*'").rows == []
        assert len(db.execute("SELECT word FROM words WHERE word GLOB 'al*'").rows) == 1

    def test_between(self, db):
        result = db.execute("SELECT word FROM words WHERE frequency BETWEEN 2 AND 3")
        assert sorted(r[0] for r in result.rows) == ["alpha", "gamma"]

    def test_in_list(self, db):
        result = db.execute("SELECT word FROM words WHERE word IN ('alpha', 'beta')")
        assert len(result.rows) == 2

    def test_case_expression(self, db):
        result = db.execute(
            "SELECT word, CASE WHEN frequency >= 2 THEN 'hot' ELSE 'cold' END AS label "
            "FROM words ORDER BY _id"
        )
        assert result.rows == [("alpha", "hot"), ("beta", "cold"), ("gamma", "hot")]

    def test_scalar_subquery(self, db):
        result = db.execute("SELECT (SELECT MAX(frequency) FROM words)")
        assert result.rows == [(3,)]

    def test_correlated_subquery(self, db):
        result = db.execute(
            "SELECT word FROM words w WHERE frequency = "
            "(SELECT MAX(frequency) FROM words WHERE _id <= w._id)"
        )
        assert [r[0] for r in result.rows] == ["alpha", "alpha", "alpha"] or [
            r[0] for r in result.rows
        ] == ["alpha"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 1").rows == [(2,)]

    def test_unknown_table_raises(self, db):
        with pytest.raises(SqlNameError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column_raises(self, db):
        with pytest.raises(SqlNameError):
            db.execute("SELECT nope FROM words")


class TestNullSemantics:
    def test_null_comparison_is_unknown(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES (NULL, NULL)")
        result = db.execute("SELECT COUNT(*) FROM words WHERE word = NULL")
        assert result.rows == [(0,)]

    def test_is_null(self, db):
        db.execute("INSERT INTO words (word) VALUES (NULL)")
        result = db.execute("SELECT _id FROM words WHERE word IS NULL")
        assert len(result.rows) == 1

    def test_is_not_null(self, db):
        result = db.execute("SELECT COUNT(*) FROM words WHERE word IS NOT NULL")
        assert result.rows == [(3,)]

    def test_null_sorts_first(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES (NULL, 0)")
        result = db.execute("SELECT word FROM words ORDER BY word")
        assert result.rows[0] == (None,)

    def test_division_by_zero_is_null(self, db):
        assert db.execute("SELECT 1 / 0").rows == [(None,)]


class TestAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM words").scalar() == 3

    def test_count_ignores_nulls(self, db):
        db.execute("INSERT INTO words (word) VALUES (NULL)")
        assert db.execute("SELECT COUNT(word) FROM words").scalar() == 3

    def test_sum_avg_min_max(self, db):
        row = db.execute(
            "SELECT SUM(frequency), AVG(frequency), MIN(frequency), MAX(frequency) FROM words"
        ).rows[0]
        assert row == (6, 2.0, 1, 3)

    def test_aggregate_on_empty_set(self, db):
        row = db.execute("SELECT COUNT(*), SUM(frequency), MAX(word) FROM words WHERE _id > 99").rows[0]
        assert row == (0, None, None)

    def test_group_by(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES ('alpha', 7)")
        result = db.execute(
            "SELECT word, COUNT(*), SUM(frequency) FROM words GROUP BY word ORDER BY word"
        )
        assert result.rows[0] == ("alpha", 2, 10)

    def test_having(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES ('alpha', 7)")
        result = db.execute(
            "SELECT word FROM words GROUP BY word HAVING COUNT(*) > 1"
        )
        assert result.rows == [("alpha",)]

    def test_count_distinct(self, db):
        db.execute("INSERT INTO words (word, frequency) VALUES ('alpha', 9)")
        assert db.execute("SELECT COUNT(DISTINCT word) FROM words").scalar() == 3

    def test_min_max_scalar_form(self, db):
        assert db.execute("SELECT MAX(1, 5, 3)").scalar() == 5


class TestJoins:
    @pytest.fixture
    def joined(self, db):
        db.execute("CREATE TABLE tags (tag_id INTEGER PRIMARY KEY, word_id INTEGER, tag TEXT)")
        db.executemany(
            "INSERT INTO tags (word_id, tag) VALUES (?, ?)",
            [(1, "greek"), (1, "first"), (3, "greek")],
        )
        return db

    def test_inner_join(self, joined):
        result = joined.execute(
            "SELECT words.word, tags.tag FROM words JOIN tags ON words._id = tags.word_id "
            "ORDER BY tags.tag_id"
        )
        assert result.rows == [("alpha", "greek"), ("alpha", "first"), ("gamma", "greek")]

    def test_left_join_keeps_unmatched(self, joined):
        result = joined.execute(
            "SELECT words.word, tags.tag FROM words LEFT JOIN tags ON words._id = tags.word_id "
            "WHERE tags.tag IS NULL"
        )
        assert result.rows == [("beta", None)]

    def test_cross_join_with_where(self, joined):
        result = joined.execute(
            "SELECT w.word, t.tag FROM words w, tags t WHERE w._id = t.word_id AND t.tag = 'first'"
        )
        assert result.rows == [("alpha", "first")]


class TestDml:
    def test_insert_returns_lastrowid(self, db):
        result = db.execute("INSERT INTO words (word) VALUES ('delta')")
        assert result.lastrowid == 4

    def test_explicit_pk(self, db):
        db.execute("INSERT INTO words (_id, word) VALUES (42, 'answer')")
        assert db.execute("SELECT word FROM words WHERE _id = 42").scalar() == "answer"
        # autoincrement continues above the max
        result = db.execute("INSERT INTO words (word) VALUES ('next')")
        assert result.lastrowid == 43

    def test_duplicate_pk_raises(self, db):
        with pytest.raises(SqlIntegrityError):
            db.execute("INSERT INTO words (_id, word) VALUES (1, 'dup')")

    def test_insert_or_replace(self, db):
        db.execute("INSERT OR REPLACE INTO words (_id, word) VALUES (1, 'replaced')")
        assert db.execute("SELECT word FROM words WHERE _id = 1").scalar() == "replaced"
        assert db.execute("SELECT COUNT(*) FROM words").scalar() == 3

    def test_not_null_enforced(self, db):
        db.execute("CREATE TABLE strict (id INTEGER PRIMARY KEY, v TEXT NOT NULL)")
        with pytest.raises(SqlIntegrityError):
            db.execute("INSERT INTO strict (id) VALUES (1)")

    def test_unique_enforced(self, db):
        db.execute("CREATE TABLE uq (id INTEGER PRIMARY KEY, v TEXT UNIQUE)")
        db.execute("INSERT INTO uq (v) VALUES ('x')")
        with pytest.raises(SqlIntegrityError):
            db.execute("INSERT INTO uq (v) VALUES ('x')")

    def test_default_applied(self, db):
        db.execute("INSERT INTO words (word) VALUES ('defaulted')")
        assert (
            db.execute("SELECT frequency FROM words WHERE word = 'defaulted'").scalar() == 1
        )

    def test_update_with_where(self, db):
        count = db.execute("UPDATE words SET frequency = 99 WHERE word = 'beta'").rowcount
        assert count == 1
        assert db.execute("SELECT frequency FROM words WHERE word = 'beta'").scalar() == 99

    def test_update_expression_references_row(self, db):
        db.execute("UPDATE words SET frequency = frequency + 10")
        assert db.execute("SELECT SUM(frequency) FROM words").scalar() == 36

    def test_delete(self, db):
        assert db.execute("DELETE FROM words WHERE frequency = 1").rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM words").scalar() == 2

    def test_insert_select(self, db):
        db.execute("CREATE TABLE archive (_id INTEGER PRIMARY KEY, word TEXT)")
        db.execute("INSERT INTO archive (word) SELECT word FROM words WHERE frequency > 1")
        assert db.execute("SELECT COUNT(*) FROM archive").scalar() == 2

    def test_insert_wrong_arity_raises(self, db):
        with pytest.raises(SqlError):
            db.execute("INSERT INTO words (word, frequency) VALUES ('x')")

    def test_autoincrement_base(self, db):
        db.table("words").set_autoincrement_base(10_000_001)
        result = db.execute("INSERT INTO words (word) VALUES ('volatile')")
        assert result.lastrowid == 10_000_001


class TestScalarFunctions:
    def test_length_upper_lower(self, db):
        row = db.execute("SELECT length(word), upper(word), lower('ABC') FROM words WHERE _id = 1").rows[0]
        assert row == (5, "ALPHA", "abc")

    def test_coalesce_ifnull(self, db):
        assert db.execute("SELECT coalesce(NULL, NULL, 7)").scalar() == 7
        assert db.execute("SELECT ifnull(NULL, 'fb')").scalar() == "fb"

    def test_substr(self, db):
        assert db.execute("SELECT substr('abcdef', 2, 3)").scalar() == "bcd"

    def test_concat_operator(self, db):
        assert db.execute("SELECT 'a' || 'b' || 'c'").scalar() == "abc"

    def test_typeof(self, db):
        assert db.execute("SELECT typeof(1)").scalar() == "integer"
        assert db.execute("SELECT typeof('x')").scalar() == "text"
        assert db.execute("SELECT typeof(NULL)").scalar() == "null"

    def test_unknown_function_raises(self, db):
        with pytest.raises(SqlNameError):
            db.execute("SELECT frobnicate(1)")
