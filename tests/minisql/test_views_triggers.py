"""SQL views, INSTEAD OF triggers, and the flattening planner — the exact
machinery the COW proxy is built from (paper Figure 6 / footnote 5)."""

import pytest

from repro.errors import SqlNameError, SqlReadOnlyError
from repro.minisql import Database
from repro.minisql.planner import (
    FLATTEN_ALWAYS,
    FLATTEN_NEVER_WITH_ORDER_BY,
    FLATTEN_ORDER_BY_SUBSET,
)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT)")
    database.executemany(
        "INSERT INTO tab1 (_id, data) VALUES (?, ?)", [(1, "a"), (2, "b"), (3, "c")]
    )
    return database


@pytest.fixture
def figure6(db):
    """The paper's Figure 6 setup, verbatim."""
    db.execute(
        "CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, "
        "_whiteout INTEGER DEFAULT 0)"
    )
    db.table("tab1_delta_A").set_autoincrement_base(10_000_001)
    db.executemany(
        "INSERT INTO tab1_delta_A (_id, data, _whiteout) VALUES (?, ?, ?)",
        [(2, "b", 1), (3, "d", 0)],
    )
    db.execute("INSERT INTO tab1_delta_A (data, _whiteout) VALUES ('e', 0)")
    db.execute(
        "CREATE VIEW tab1_view_A AS "
        "SELECT _id, data FROM tab1 WHERE _id NOT IN (SELECT _id FROM tab1_delta_A) "
        "UNION ALL SELECT _id, data FROM tab1_delta_A WHERE _whiteout = 0"
    )
    db.execute(
        "CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN "
        "INSERT OR REPLACE INTO tab1_delta_A (_id, data, _whiteout) "
        "VALUES (OLD._id, NEW.data, 0); END"
    )
    db.execute(
        "CREATE TRIGGER tab1_A_insert INSTEAD OF INSERT ON tab1_view_A BEGIN "
        "INSERT INTO tab1_delta_A (_id, data, _whiteout) VALUES (NEW._id, NEW.data, 0); END"
    )
    db.execute(
        "CREATE TRIGGER tab1_A_delete INSTEAD OF DELETE ON tab1_view_A BEGIN "
        "INSERT OR REPLACE INTO tab1_delta_A (_id, data, _whiteout) "
        "VALUES (OLD._id, OLD.data, 1); END"
    )
    return db


class TestViews:
    def test_simple_view(self, db):
        db.execute("CREATE VIEW big AS SELECT _id, data FROM tab1 WHERE _id > 1")
        result = db.execute("SELECT * FROM big ORDER BY _id")
        assert result.rows == [(2, "b"), (3, "c")]

    def test_view_reflects_base_changes(self, db):
        db.execute("CREATE VIEW all_rows AS SELECT data FROM tab1")
        db.execute("INSERT INTO tab1 (data) VALUES ('new')")
        assert len(db.execute("SELECT * FROM all_rows").rows) == 4

    def test_view_over_view(self, db):
        db.execute("CREATE VIEW v1 AS SELECT _id, data FROM tab1 WHERE _id > 1")
        db.execute("CREATE VIEW v2 AS SELECT data FROM v1 WHERE _id > 2")
        assert db.execute("SELECT * FROM v2").rows == [("c",)]

    def test_view_without_trigger_is_readonly(self, db):
        db.execute("CREATE VIEW v AS SELECT data FROM tab1")
        with pytest.raises(SqlReadOnlyError):
            db.execute("INSERT INTO v (data) VALUES ('x')")
        with pytest.raises(SqlReadOnlyError):
            db.execute("UPDATE v SET data = 'x'")
        with pytest.raises(SqlReadOnlyError):
            db.execute("DELETE FROM v")

    def test_duplicate_view_name_raises(self, db):
        db.execute("CREATE VIEW v AS SELECT data FROM tab1")
        with pytest.raises(SqlNameError):
            db.execute("CREATE VIEW v AS SELECT data FROM tab1")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT data FROM tab1")
        db.execute("DROP VIEW v")
        with pytest.raises(SqlNameError):
            db.execute("SELECT * FROM v")

    def test_trigger_requires_view(self, db):
        with pytest.raises(SqlNameError):
            db.execute(
                "CREATE TRIGGER t INSTEAD OF INSERT ON tab1 BEGIN "
                "INSERT INTO tab1 (data) VALUES ('x'); END"
            )


class TestFigure6:
    """The exact contents of the paper's Figure 6."""

    def test_cow_view_contents(self, figure6):
        result = figure6.execute("SELECT * FROM tab1_view_A ORDER BY _id")
        assert result.rows == [(1, "a"), (3, "d"), (10_000_001, "e")]

    def test_primary_table_untouched(self, figure6):
        result = figure6.execute("SELECT * FROM tab1 ORDER BY _id")
        assert result.rows == [(1, "a"), (2, "b"), (3, "c")]

    def test_update_through_view_copies_on_write(self, figure6):
        figure6.execute("UPDATE tab1_view_A SET data = ? WHERE _id = 1", ["a2"])
        assert figure6.execute(
            "SELECT data FROM tab1_view_A WHERE _id = 1"
        ).scalar() == "a2"
        assert figure6.execute("SELECT data FROM tab1 WHERE _id = 1").scalar() == "a"
        assert figure6.execute(
            "SELECT data, _whiteout FROM tab1_delta_A WHERE _id = 1"
        ).rows == [("a2", 0)]

    def test_delete_through_view_whiteouts(self, figure6):
        figure6.execute("DELETE FROM tab1_view_A WHERE _id = 3")
        ids = [r[0] for r in figure6.execute("SELECT _id FROM tab1_view_A ORDER BY _id").rows]
        assert ids == [1, 10_000_001]
        assert figure6.execute(
            "SELECT _whiteout FROM tab1_delta_A WHERE _id = 3"
        ).scalar() == 1

    def test_insert_through_view_allocates_above_offset(self, figure6):
        figure6.execute("INSERT INTO tab1_view_A (data) VALUES ('f')")
        new_id = figure6.execute("SELECT MAX(_id) FROM tab1_delta_A").scalar()
        assert new_id == 10_000_002
        assert (new_id, "f") in figure6.execute("SELECT _id, data FROM tab1_view_A").rows

    def test_read_your_writes(self, figure6):
        figure6.execute("UPDATE tab1_view_A SET data = 'mine' WHERE _id = 1")
        figure6.execute("DELETE FROM tab1_view_A WHERE _id = 3")
        figure6.execute("INSERT INTO tab1_view_A (data) VALUES ('new')")
        rows = dict(figure6.execute("SELECT _id, data FROM tab1_view_A").rows)
        assert rows[1] == "mine"
        assert 3 not in rows
        assert "new" in rows.values()


class TestFlatteningPlanner:
    """Footnote 5: the ORDER BY restriction on UNION ALL flattening."""

    def make_view(self, emulation):
        db = Database(sqlite_emulation=emulation)
        db.execute("CREATE TABLE a (_id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("CREATE TABLE b (_id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO a (v) VALUES ('x'), ('y')")
        db.execute("INSERT INTO b (v) VALUES ('z')")
        db.execute(
            "CREATE VIEW u AS SELECT _id, v FROM a UNION ALL SELECT _id, v FROM b"
        )
        return db

    def test_no_order_by_flattens(self):
        db = self.make_view(FLATTEN_ORDER_BY_SUBSET)
        db.execute("SELECT v FROM u WHERE v = 'x'")
        assert db.stats.flattened_queries == 1
        assert db.stats.materialized_views == 0

    def test_order_by_subset_flattens_on_386(self):
        db = self.make_view(FLATTEN_ORDER_BY_SUBSET)
        db.execute("SELECT _id, v FROM u ORDER BY _id")
        assert db.stats.flattened_queries == 1

    def test_order_by_nonsubset_materializes_on_386(self):
        db = self.make_view(FLATTEN_ORDER_BY_SUBSET)
        db.execute("SELECT v FROM u ORDER BY _id")
        assert db.stats.flattened_queries == 0
        assert db.stats.materialized_views == 1

    def test_star_always_flattens(self):
        db = self.make_view(FLATTEN_NEVER_WITH_ORDER_BY)
        db.execute("SELECT * FROM u ORDER BY _id")
        assert db.stats.flattened_queries == 1

    def test_3711_never_flattens_with_order_by(self):
        db = self.make_view(FLATTEN_NEVER_WITH_ORDER_BY)
        db.execute("SELECT _id, v FROM u ORDER BY _id")
        assert db.stats.flattened_queries == 0

    def test_ideal_always_flattens(self):
        db = self.make_view(FLATTEN_ALWAYS)
        db.execute("SELECT v FROM u ORDER BY _id")
        assert db.stats.flattened_queries == 1

    def test_flattened_and_materialized_agree(self):
        queries = [
            ("SELECT v FROM u WHERE v <> 'y' ORDER BY _id", None),
            ("SELECT _id, v FROM u ORDER BY v DESC", None),
            ("SELECT * FROM u ORDER BY _id", None),
        ]
        for sql, _ in queries:
            flat = self.make_view(FLATTEN_ALWAYS).execute(sql)
            mat = self.make_view(FLATTEN_NEVER_WITH_ORDER_BY).execute(sql)
            assert flat.rows == mat.rows, sql

    def test_aggregate_over_view_not_flattened(self):
        db = self.make_view(FLATTEN_ORDER_BY_SUBSET)
        assert db.execute("SELECT COUNT(*) FROM u").scalar() == 3
        assert db.stats.flattened_queries == 0
