"""Tests for generators, the measurement harness, the latency model and
table rendering."""

import pytest

from repro import AndroidManifest, Device
from repro.workloads.generators import (
    DICTIONARY_ROWS,
    deterministic_bytes,
    make_dictionary_words,
    make_external_files,
    make_image_files,
    make_internal_files,
    publish_download_set,
)
from repro.workloads.harness import Measurement, measure, overhead_pct
from repro.workloads.latency import (
    IO_FRACTION,
    TASK_BASELINES_MS,
    modelled_task_latency,
)
from repro.workloads.reports import pct, render_table


class Nop:
    def main(self, api, intent):
        return None


class TestGenerators:
    def test_deterministic_bytes_stable(self):
        assert deterministic_bytes(100) == deterministic_bytes(100)
        assert deterministic_bytes(100, seed="a") != deterministic_bytes(100, seed="b")

    def test_deterministic_bytes_length(self):
        for size in (0, 1, 31, 32, 33, 4096):
            assert len(deterministic_bytes(size)) == size

    def test_dictionary_words_distinct(self):
        words = make_dictionary_words(DICTIONARY_ROWS)
        assert len(words) == len(set(words)) == 1000

    def test_make_files(self, device):
        device.install(AndroidManifest(package="com.gen.app"), Nop())
        api = device.spawn("com.gen.app")
        ext = make_external_files(api, count=3, size=64)
        internal = make_internal_files(api, count=2, size=16)
        assert len(ext) == 3 and len(internal) == 2
        assert api.sys.stat(ext[0]).size == 64
        assert api.sys.stat(internal[0]).size == 16

    def test_image_files_are_jpegish(self, device):
        device.install(AndroidManifest(package="com.gen.app"), Nop())
        api = device.spawn("com.gen.app")
        paths = make_image_files(api, count=1, size=1024)
        assert api.sys.read_file(paths[0])[:2] == b"\xff\xd8"

    def test_publish_download_set(self, device):
        names = publish_download_set(device, count=5, size=10, host="h.example")
        assert len(names) == 5
        assert device.network.hosted("h.example", names[0]) == deterministic_bytes(10)


class TestHarness:
    def test_measure_returns_requested_trials(self):
        m = measure(lambda: sum(range(100)), trials=7, label="t")
        assert len(m.trials_ms) == 7
        assert m.mean_ms > 0

    def test_setup_not_timed(self):
        import time

        def slow_setup():
            time.sleep(0.002)

        m = measure(lambda: None, trials=3, setup=slow_setup)
        assert m.mean_ms < 2.0  # setup's 2ms is excluded

    def test_overhead_pct(self):
        baseline = Measurement("b", [10.0, 10.0])
        treatment = Measurement("t", [15.0, 15.0])
        assert overhead_pct(baseline, treatment) == pytest.approx(50.0)

    def test_single_trial_has_zero_std(self):
        assert Measurement("x", [5.0]).std_ms == 0.0

    def test_str_format(self):
        assert "ms" in str(Measurement("x", [1.0, 2.0]))


class TestLatencyModel:
    def test_scale_one_returns_baseline(self):
        for task, baseline in TASK_BASELINES_MS.items():
            assert modelled_task_latency(task, 1.0) == pytest.approx(baseline)

    def test_io_scale_bounded_by_io_fraction(self):
        # Even a 10x I/O slowdown moves task latency by at most 9x the IO
        # fraction of the baseline.
        for task, baseline in TASK_BASELINES_MS.items():
            slowed = modelled_task_latency(task, 10.0)
            bound = baseline * (1 + 9 * IO_FRACTION[task])
            assert slowed <= bound + 1e-6

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            modelled_task_latency("no_such_task", 1.0)


class TestReports:
    def test_render_alignment(self):
        table = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A  ")
        assert "333" in lines[4]  # title, header, separator, row1, row2

    def test_pct_format(self):
        assert pct(31.66) == "31.7%"
        assert pct(0) == "0.0%"

    def test_non_string_cells(self):
        table = render_table(["n"], [[42]])
        assert "42" in table


class TestArmChaos:
    """Seeded chaos arming (the --faults-seed harness hook)."""

    def _run(self, seed):
        from repro.errors import ReproError
        from repro.workloads.harness import arm_chaos

        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package="com.chaos.app"), Nop())
        with arm_chaos(seed, probability=0.2) as plane:
            api = device.spawn("com.chaos.app")
            for index in range(30):
                try:
                    api.write_external(f"c{index}.txt", b"x")
                except ReproError:
                    pass
            return plane.schedule_bytes()

    def test_same_seed_reproduces_the_schedule(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_changes_the_schedule(self):
        assert self._run(11) != self._run(12)

    def test_plane_left_clean(self):
        from repro.faults import FAULTS

        self._run(11)
        assert not FAULTS.enabled and FAULTS.schedule == []

    def test_points_subset_limits_arming(self):
        from repro.faults import FAULTS
        from repro.workloads.harness import arm_chaos

        with arm_chaos(3, points=["vfs.write", "binder.transact"]):
            assert FAULTS.armed_points() == ["binder.transact", "vfs.write"]
