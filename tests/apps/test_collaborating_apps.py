"""Unit tests for the 'apps that need help': Dropbox, Google Drive, Email,
Browser, the wrapper app, and the app catalog."""

import pytest

from repro.errors import SecurityException
from repro.android.intents import Intent
from repro.apps import (
    BrowserApp,
    DropboxApp,
    EmailApp,
    GoogleDriveApp,
    PdfViewerApp,
    WrapperApp,
    install_standard_apps,
    STANDARD_PACKAGES,
)
from repro import AndroidManifest, Device


@pytest.fixture
def env():
    device = Device(maxoid_enabled=True)
    device.network.publish("dropbox.com", "a.txt", b"file a")
    device.network.publish("dropbox.com", "b.txt", b"file b")
    device.network.publish("drive.google.com", "doc.txt", b"drive doc")
    device.network.publish("example.com", "dl.bin", b"downloaded")
    device.apps = install_standard_apps(device)
    return device


class TestCatalog:
    def test_all_standard_packages_install(self, env):
        assert len(env.apps) == len(STANDARD_PACKAGES) == 12
        for package in STANDARD_PACKAGES:
            assert env.packages.is_installed(package)

    def test_build_packages_are_unique(self):
        assert len({cls.BUILD.package for cls in STANDARD_PACKAGES.values()}) == 12


class TestDropbox:
    def test_sync_down_tracks_hashes(self, env):
        dbx = env.spawn(DropboxApp.BUILD.package)
        fetched = env.apps[DropboxApp.BUILD.package].sync_down(dbx, ["a.txt", "b.txt"])
        assert len(fetched) == 2
        # Nothing to sync right after a fetch.
        assert env.apps[DropboxApp.BUILD.package].auto_sync(dbx) == []

    def test_auto_sync_uploads_own_changes(self, env):
        app = env.apps[DropboxApp.BUILD.package]
        dbx = env.spawn(DropboxApp.BUILD.package)
        app.sync_down(dbx, ["a.txt"])
        dbx.sys.write_file("/storage/sdcard/Dropbox/a.txt", b"changed by user")
        assert app.auto_sync(dbx) == ["a.txt"]
        assert env.network.leaked_to_network(b"changed by user")

    def test_upload_from_tmp_commits(self, env):
        app = env.apps[DropboxApp.BUILD.package]
        dbx = env.spawn(DropboxApp.BUILD.package)
        app.sync_down(dbx, ["a.txt"])
        delegate = env.spawn(PdfViewerApp.BUILD.package, initiator=DropboxApp.BUILD.package)
        delegate.sys.write_file("/storage/sdcard/Dropbox/a.txt", b"delegate edit")
        committed = app.upload_from_tmp(dbx, "a.txt")
        assert dbx.sys.read_file(committed) == b"delegate edit"
        # After commit, auto_sync is already up to date.
        assert app.auto_sync(dbx) == []


class TestGoogleDrive:
    def test_cache_names_deterministic_but_opaque(self, env):
        app = env.apps[GoogleDriveApp.BUILD.package]
        drive = env.spawn(GoogleDriveApp.BUILD.package)
        path = app.fetch(drive, "doc.txt")
        assert "/cache/filecache/" in path
        assert not path.endswith("doc.txt")  # unguessable name

    def test_cached_file_world_readable(self, env):
        app = env.apps[GoogleDriveApp.BUILD.package]
        drive = env.spawn(GoogleDriveApp.BUILD.package)
        path = app.fetch(drive, "doc.txt")
        other = env.spawn(PdfViewerApp.BUILD.package)
        assert other.sys.read_file(path) == b"drive doc"


class TestEmail:
    def test_attachment_stored_privately(self, env):
        app = env.apps[EmailApp.BUILD.package]
        email = env.spawn(EmailApp.BUILD.package)
        attachment_id = app.receive_attachment(email, "x.pdf", b"%PDF x")
        assert email.sys.exists(
            f"/data/data/{EmailApp.BUILD.package}/attachments/{attachment_id}/x.pdf"
        )

    def test_provider_query_lists_attachments(self, env):
        app = env.apps[EmailApp.BUILD.package]
        email = env.spawn(EmailApp.BUILD.package)
        app.receive_attachment(email, "x.pdf", b"%PDF x")
        app.receive_attachment(email, "y.pdf", b"%PDF y")
        rows = email.query(app.attachment_uri(1))
        assert ("1" in str(rows.rows)) or rows.rows  # (_id, name) pairs
        assert len(rows.rows) == 2

    def test_open_attachment_without_grant_denied(self, env):
        app = env.apps[EmailApp.BUILD.package]
        email = env.spawn(EmailApp.BUILD.package)
        attachment_id = app.receive_attachment(email, "x.pdf", b"%PDF x")
        thief = env.spawn(PdfViewerApp.BUILD.package)
        with pytest.raises(SecurityException):
            thief.open_input(app.attachment_uri(attachment_id))

    def test_save_is_public(self, env):
        app = env.apps[EmailApp.BUILD.package]
        email = env.spawn(EmailApp.BUILD.package)
        attachment_id = app.receive_attachment(email, "flyer.pdf", b"%PDF f")
        path = app.save_attachment(email, attachment_id)
        from repro.android.uri import Uri

        rows = env.spawn(PdfViewerApp.BUILD.package).query(
            Uri.content("downloads", "all_downloads")
        ).rows
        assert rows  # the Downloads-provider metadata entry
        assert env.spawn(PdfViewerApp.BUILD.package).sys.exists(path)


class TestBrowser:
    def test_normal_browsing_records_history(self, env):
        app = env.apps[BrowserApp.BUILD.package]
        browser = env.spawn(BrowserApp.BUILD.package)
        app.browse(browser, "example.com", "dl.bin", incognito=False)
        assert app.history == ["example.com/dl.bin"]
        assert browser.prefs.get("history") == ["example.com/dl.bin"]

    def test_incognito_browsing_skips_persistent_history(self, env):
        app = env.apps[BrowserApp.BUILD.package]
        browser = env.spawn(BrowserApp.BUILD.package)
        app.browse(browser, "example.com", "dl.bin", incognito=True)
        assert app.history == []
        assert browser.prefs.get("history") is None
        assert app.incognito_history == ["example.com/dl.bin"]

    def test_open_url_from_qr(self, env):
        app = env.apps[BrowserApp.BUILD.package]
        browser = env.spawn(BrowserApp.BUILD.package)
        content = app.open_url_from_qr(browser, {"text": "example.com/dl.bin"})
        assert content == b"downloaded"


class TestWrapper:
    def test_vault_is_private(self, env):
        app = env.apps[WrapperApp.BUILD.package]
        wrapper = env.spawn(WrapperApp.BUILD.package)
        app.add_document(wrapper, "w.pdf", b"%PDF w")
        assert not env.spawn(PdfViewerApp.BUILD.package).sys.exists(
            "/storage/sdcard/wrapper-vault/w.pdf"
        )

    def test_end_session_clears_everything(self, env):
        app = env.apps[WrapperApp.BUILD.package]
        wrapper = env.spawn(WrapperApp.BUILD.package)
        app.add_document(wrapper, "w.pdf", b"%PDF w")
        app.open_with_real_app(wrapper, "w.pdf")
        assert app.end_session(wrapper) >= 1
