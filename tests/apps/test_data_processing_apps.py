"""Unit tests for the Table 1 data-processing apps: each app leaves
exactly the traces its category is catalogued with."""

import pytest

from repro.android.intents import Intent
from repro.android.uri import Uri
from repro.apps import (
    BarcodeScannerApp,
    CameraApp,
    CamScannerApp,
    OfficeApp,
    PdfViewerApp,
    VideoPlayerApp,
)
from repro import AndroidManifest, Device


@pytest.fixture
def env():
    device = Device(maxoid_enabled=False)  # unit-test the raw behaviour
    apps = {
        "adobe": PdfViewerApp.install(device),
        "office": OfficeApp.install(device),
        "barcode": BarcodeScannerApp.install(device),
        "camscanner": CamScannerApp.install(device),
        "camera": CameraApp.install(device),
        "vplayer": VideoPlayerApp.install(device),
    }
    device.apps_by_name = apps
    return device


class TestPdfViewer:
    def test_open_by_path_records_recents_no_copy(self, env):
        api = env.spawn(PdfViewerApp.BUILD.package)
        path = api.write_external("docs/a.pdf", b"%PDF data")
        result = env.apps_by_name["adobe"].main(
            api, Intent(Intent.ACTION_VIEW, extras={"path": path})
        )
        assert result["sd_copy"] is None
        assert api.prefs.get("recent_files") == ["a.pdf"]

    def test_open_file_uri(self, env):
        api = env.spawn(PdfViewerApp.BUILD.package)
        path = api.write_external("docs/b.pdf", b"%PDF other")
        result = env.apps_by_name["adobe"].main(
            api, Intent(Intent.ACTION_VIEW, data=Uri.file(path))
        )
        assert result["name"] == "b.pdf"
        assert result["bytes"] == 10

    def test_recents_capped_at_20(self, env):
        api = env.spawn(PdfViewerApp.BUILD.package)
        app = env.apps_by_name["adobe"]
        for index in range(25):
            path = api.write_external(f"docs/f{index}.pdf", b"x")
            app.main(api, Intent(Intent.ACTION_VIEW, extras={"path": path}))
        assert len(api.prefs.get("recent_files")) == 20

    def test_search_counts_occurrences(self, env):
        api = env.spawn(PdfViewerApp.BUILD.package)
        app = env.apps_by_name["adobe"]
        assert app.search(api, b"abcabcab", b"ab") == 3
        assert app.search(api, b"xyz", b"ab") == 0

    def test_open_without_source_raises(self, env):
        api = env.spawn(PdfViewerApp.BUILD.package)
        with pytest.raises(ValueError):
            env.apps_by_name["adobe"].main(api, Intent(Intent.ACTION_VIEW))


class TestOffice:
    def test_view_leaves_three_traces(self, env):
        api = env.spawn(OfficeApp.BUILD.package)
        path = api.write_external("docs/sheet.xls", b"CELLS")
        result = env.apps_by_name["office"].main(
            api, Intent(Intent.ACTION_VIEW, extras={"path": path})
        )
        # Private ADF recents file.
        assert b"sheet.xls" in api.read_internal("recents.adf")
        # Public thumbnail + public index DB on the SD card.
        assert api.sys.exists(result["thumbnail"])
        assert b"sheet.xls" in api.read_external("office/index.db")

    def test_edit_modifies_in_place(self, env):
        api = env.spawn(OfficeApp.BUILD.package)
        path = api.write_external("docs/memo.doc", b"original")
        env.apps_by_name["office"].main(
            api, Intent(Intent.ACTION_EDIT, extras={"path": path})
        )
        assert api.sys.read_file(path).endswith(b"[edited with office]")

    def test_index_accumulates(self, env):
        api = env.spawn(OfficeApp.BUILD.package)
        app = env.apps_by_name["office"]
        for name in ("a.doc", "b.doc"):
            path = api.write_external(f"docs/{name}", b"x")
            app.main(api, Intent(Intent.ACTION_VIEW, extras={"path": path}))
        index = api.read_external("office/index.db").decode()
        assert index.count("\n") == 2


class TestScanners:
    def test_barcode_history_accumulates(self, env):
        api = env.spawn(BarcodeScannerApp.BUILD.package)
        app = env.apps_by_name["barcode"]
        app.main(api, Intent(Intent.ACTION_SCAN, extras={"qr_payload": "first"}))
        app.main(api, Intent(Intent.ACTION_SCAN, extras={"qr_payload": "second"}))
        assert app.recent_scans(api) == ["first", "second"]

    def test_barcode_returns_decoded_text(self, env):
        api = env.spawn(BarcodeScannerApp.BUILD.package)
        result = env.apps_by_name["barcode"].main(
            api, Intent(Intent.ACTION_SCAN, extras={"qr_payload": "https://x"})
        )
        assert result == {"text": "https://x", "format": "QR_CODE"}

    def test_camscanner_leaves_image_thumb_log(self, env):
        api = env.spawn(CamScannerApp.BUILD.package)
        source = api.write_external("in/page1.jpg", b"PAGEDATA")
        result = env.apps_by_name["camscanner"].main(
            api, Intent(Intent.ACTION_SCAN, extras={"path": source})
        )
        assert api.sys.read_file(result["image"]).startswith(b"SCANNED:")
        assert api.sys.read_file(result["thumbnail"]).startswith(b"THUMB:")
        assert b"page1.jpg" in api.read_external("CamScanner/scanner.log")

    def test_camscanner_db_entry(self, env):
        api = env.spawn(CamScannerApp.BUILD.package)
        source = api.write_external("in/page2.jpg", b"DATA")
        env.apps_by_name["camscanner"].main(
            api, Intent(Intent.ACTION_SCAN, extras={"path": source})
        )
        db = api.db("scans")
        assert db.query("SELECT name FROM scans").rows == [("page2.jpg",)]


class TestCameraAndVideo:
    def test_take_photo_creates_file_and_media_row(self, env):
        api = env.spawn(CameraApp.BUILD.package)
        result = env.apps_by_name["camera"].main(
            api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": b"\xff\xd8RAW"})
        )
        assert api.sys.read_file(result["path"]) == b"\xff\xd8RAW"
        rows = api.query(Uri.content("media", "files")).rows
        assert len(rows) == 1

    def test_shot_counter_increments(self, env):
        api = env.spawn(CameraApp.BUILD.package)
        app = env.apps_by_name["camera"]
        first = app.main(api, Intent(Intent.ACTION_IMAGE_CAPTURE))
        second = app.main(api, Intent(Intent.ACTION_IMAGE_CAPTURE))
        assert first["path"] != second["path"]

    def test_edit_photo_creates_new_media_entry(self, env):
        api = env.spawn(CameraApp.BUILD.package)
        app = env.apps_by_name["camera"]
        shot = app.main(api, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": b"\xff\xd8X"}))
        edited = app.main(api, Intent(Intent.ACTION_EDIT, extras={"path": shot["path"]}))
        assert api.sys.read_file(edited["path"]).startswith(b"EDITED:")
        assert len(api.query(Uri.content("media", "files")).rows) == 2

    def test_vplayer_history_and_thumbnail(self, env):
        api = env.spawn(VideoPlayerApp.BUILD.package)
        path = api.write_external("Movies/clip.mp4", b"FRAMES")
        result = env.apps_by_name["vplayer"].main(
            api, Intent(Intent.ACTION_VIEW, extras={"path": path})
        )
        assert env.apps_by_name["vplayer"].playback_history(api) == ["clip.mp4"]
        assert api.sys.exists(result["thumbnail"])
