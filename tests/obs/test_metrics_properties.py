"""Property-based tests for the metrics registry and snapshot algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Metrics,
    MetricError,
    diff,
)

pytestmark = pytest.mark.trace

# One registry mutation: (kind, metric name, value).
ops = st.lists(
    st.tuples(
        st.sampled_from(["count", "gauge", "observe"]),
        st.sampled_from(["vfs.open", "aufs.copy_up", "cow.query", "sql.ms"]),
        st.one_of(
            st.integers(min_value=0, max_value=1000),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ),
    ),
    max_size=60,
)


def apply_ops(metrics, batch):
    for kind, name, value in batch:
        if kind == "count":
            metrics.count("c." + name, int(value))
        elif kind == "gauge":
            metrics.gauge("g." + name).set(value)
        else:
            metrics.observe("h." + name, value)


class TestCounters:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
    def test_counter_is_sum_of_increments(self, increments):
        metrics = Metrics()
        for n in increments:
            metrics.count("vfs.open", n)
        assert metrics.counter("vfs.open").value == sum(increments)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_counter_never_decreases(self, increments):
        counter = Metrics().counter("aufs.copy_up")
        previous = counter.value
        for n in increments:
            counter.inc(n)
            assert counter.value >= previous
            previous = counter.value

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError):
            Metrics().count("vfs.open", -1)


class TestHistograms:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e7, allow_nan=False), max_size=200))
    def test_bucket_counts_sum_to_total(self, values):
        metrics = Metrics()
        for v in values:
            metrics.observe("lat", v, DEFAULT_MS_BUCKETS)
        hist = metrics.histogram("lat", DEFAULT_MS_BUCKETS)
        assert sum(hist.counts) == hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))

    @given(st.floats(min_value=0.0, max_value=2e6, allow_nan=False))
    def test_observation_lands_in_the_right_bucket(self, value):
        metrics = Metrics()
        metrics.observe("size", value, DEFAULT_BYTE_BUCKETS)
        hist = metrics.histogram("size", DEFAULT_BYTE_BUCKETS)
        (index,) = [i for i, c in enumerate(hist.counts) if c]
        edges = hist.boundaries
        lower = edges[index - 1] if index > 0 else float("-inf")
        upper = edges[index] if index < len(edges) else float("inf")
        assert lower < value <= upper or (value == 0 and index == 0)

    def test_boundary_mismatch_rejected(self):
        metrics = Metrics()
        metrics.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricError):
            metrics.histogram("h", (1.0, 3.0))

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(MetricError):
            Metrics().histogram("h", (2.0, 1.0))


class TestSnapshotAlgebra:
    @settings(max_examples=50)
    @given(ops, ops, ops)
    def test_diff_is_additive_along_a_timeline(self, batch1, batch2, batch3):
        """diff(a,b) + diff(b,c) == diff(a,c) for snapshots a, b, c taken
        at successive points of one registry's life."""
        metrics = Metrics()
        apply_ops(metrics, batch1)
        a = metrics.snapshot()
        apply_ops(metrics, batch2)
        b = metrics.snapshot()
        apply_ops(metrics, batch3)
        c = metrics.snapshot()
        chained = diff(a, b) + diff(b, c)
        direct = diff(a, c)
        assert chained.counters == direct.counters
        assert chained.histograms.keys() == direct.histograms.keys()
        for name in direct.histograms:
            assert chained.histograms[name].counts == direct.histograms[name].counts
            assert chained.histograms[name].count == direct.histograms[name].count
            assert chained.histograms[name].total == pytest.approx(
                direct.histograms[name].total
            )

    @settings(max_examples=50)
    @given(ops)
    def test_diff_of_a_snapshot_with_itself_is_zero(self, batch):
        metrics = Metrics()
        apply_ops(metrics, batch)
        snap = metrics.snapshot()
        zero = diff(snap, snap)
        assert zero.nonzero().counters == {}
        assert zero.nonzero().gauges == {}
        assert zero.nonzero().histograms == {}

    @settings(max_examples=50)
    @given(ops, ops)
    def test_add_sub_round_trip(self, batch1, batch2):
        metrics = Metrics()
        apply_ops(metrics, batch1)
        a = metrics.snapshot()
        apply_ops(metrics, batch2)
        b = metrics.snapshot()
        restored = a + (b - a)
        assert restored.counters == b.counters
        assert restored.gauges == pytest.approx(b.gauges)

    @settings(max_examples=50)
    @given(ops)
    def test_counters_in_diff_are_never_negative_over_time(self, batch):
        """Monotone counters mean a later-minus-earlier diff is >= 0."""
        metrics = Metrics()
        a = metrics.snapshot()
        apply_ops(metrics, batch)
        b = metrics.snapshot()
        assert all(v >= 0 for v in diff(a, b).counters.values())

    def test_diff_handles_metrics_created_between_snapshots(self):
        metrics = Metrics()
        a = metrics.snapshot()
        metrics.count("vfs.open", 3)
        metrics.observe("lat", 0.5)
        b = metrics.snapshot()
        delta = diff(a, b)
        assert delta.counter("vfs.open") == 3
        assert delta.histograms["lat"].count == 1
