"""Property-based tests for the metrics registry and snapshot algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_MS_BUCKETS,
    Metrics,
    MetricError,
    diff,
)

pytestmark = pytest.mark.trace

# One registry mutation: (kind, metric name, value).
ops = st.lists(
    st.tuples(
        st.sampled_from(["count", "gauge", "observe"]),
        st.sampled_from(["vfs.open", "aufs.copy_up", "cow.query", "sql.ms"]),
        st.one_of(
            st.integers(min_value=0, max_value=1000),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        ),
    ),
    max_size=60,
)


def apply_ops(metrics, batch):
    for kind, name, value in batch:
        if kind == "count":
            metrics.count("c." + name, int(value))
        elif kind == "gauge":
            metrics.gauge("g." + name).set(value)
        else:
            metrics.observe("h." + name, value)


class TestCounters:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
    def test_counter_is_sum_of_increments(self, increments):
        metrics = Metrics()
        for n in increments:
            metrics.count("vfs.open", n)
        assert metrics.counter("vfs.open").value == sum(increments)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_counter_never_decreases(self, increments):
        counter = Metrics().counter("aufs.copy_up")
        previous = counter.value
        for n in increments:
            counter.inc(n)
            assert counter.value >= previous
            previous = counter.value

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError):
            Metrics().count("vfs.open", -1)


class TestHistograms:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e7, allow_nan=False), max_size=200))
    def test_bucket_counts_sum_to_total(self, values):
        metrics = Metrics()
        for v in values:
            metrics.observe("lat", v, DEFAULT_MS_BUCKETS)
        hist = metrics.histogram("lat", DEFAULT_MS_BUCKETS)
        assert sum(hist.counts) == hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))

    @given(st.floats(min_value=0.0, max_value=2e6, allow_nan=False))
    def test_observation_lands_in_the_right_bucket(self, value):
        metrics = Metrics()
        metrics.observe("size", value, DEFAULT_BYTE_BUCKETS)
        hist = metrics.histogram("size", DEFAULT_BYTE_BUCKETS)
        (index,) = [i for i, c in enumerate(hist.counts) if c]
        edges = hist.boundaries
        lower = edges[index - 1] if index > 0 else float("-inf")
        upper = edges[index] if index < len(edges) else float("inf")
        assert lower < value <= upper or (value == 0 and index == 0)

    def test_boundary_mismatch_rejected(self):
        metrics = Metrics()
        metrics.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricError):
            metrics.histogram("h", (1.0, 3.0))

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(MetricError):
            Metrics().histogram("h", (2.0, 1.0))


class TestSnapshotAlgebra:
    @settings(max_examples=50)
    @given(ops, ops, ops)
    def test_diff_is_additive_along_a_timeline(self, batch1, batch2, batch3):
        """diff(a,b) + diff(b,c) == diff(a,c) for snapshots a, b, c taken
        at successive points of one registry's life."""
        metrics = Metrics()
        apply_ops(metrics, batch1)
        a = metrics.snapshot()
        apply_ops(metrics, batch2)
        b = metrics.snapshot()
        apply_ops(metrics, batch3)
        c = metrics.snapshot()
        chained = diff(a, b) + diff(b, c)
        direct = diff(a, c)
        assert chained.counters == direct.counters
        assert chained.histograms.keys() == direct.histograms.keys()
        for name in direct.histograms:
            assert chained.histograms[name].counts == direct.histograms[name].counts
            assert chained.histograms[name].count == direct.histograms[name].count
            assert chained.histograms[name].total == pytest.approx(
                direct.histograms[name].total
            )

    @settings(max_examples=50)
    @given(ops)
    def test_diff_of_a_snapshot_with_itself_is_zero(self, batch):
        metrics = Metrics()
        apply_ops(metrics, batch)
        snap = metrics.snapshot()
        zero = diff(snap, snap)
        assert zero.nonzero().counters == {}
        assert zero.nonzero().gauges == {}
        assert zero.nonzero().histograms == {}

    @settings(max_examples=50)
    @given(ops, ops)
    def test_add_sub_round_trip(self, batch1, batch2):
        metrics = Metrics()
        apply_ops(metrics, batch1)
        a = metrics.snapshot()
        apply_ops(metrics, batch2)
        b = metrics.snapshot()
        restored = a + (b - a)
        assert restored.counters == b.counters
        assert restored.gauges == pytest.approx(b.gauges)

    @settings(max_examples=50)
    @given(ops)
    def test_counters_in_diff_are_never_negative_over_time(self, batch):
        """Monotone counters mean a later-minus-earlier diff is >= 0."""
        metrics = Metrics()
        a = metrics.snapshot()
        apply_ops(metrics, batch)
        b = metrics.snapshot()
        assert all(v >= 0 for v in diff(a, b).counters.values())

    def test_diff_handles_metrics_created_between_snapshots(self):
        metrics = Metrics()
        a = metrics.snapshot()
        metrics.count("vfs.open", 3)
        metrics.observe("lat", 0.5)
        b = metrics.snapshot()
        delta = diff(a, b)
        assert delta.counter("vfs.open") == 3
        assert delta.histograms["lat"].count == 1


class TestQuantile:
    """HistogramSnapshot.quantile: interpolation plus the documented edge
    cases (empty snapshot, single bucket, +Inf overflow bucket)."""

    def snap(self, boundaries, values):
        metrics = Metrics()
        for v in values:
            metrics.observe("q", v, boundaries)
        return metrics.snapshot().histograms["q"]

    def test_empty_snapshot_returns_zero(self):
        metrics = Metrics()
        metrics.histogram("q", (1.0, 2.0))
        hist = metrics.snapshot().histograms["q"]
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_diffed_to_empty_snapshot_returns_zero(self):
        hist = self.snap((1.0, 2.0), [0.5, 1.5])
        assert (hist - hist).quantile(0.95) == 0.0

    def test_single_bucket_interpolates_from_zero(self):
        hist = self.snap((10.0,), [3.0, 4.0])  # both land in (0, 10]
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)
        assert hist.quantile(0.0) == pytest.approx(0.0)

    def test_overflow_bucket_clamps_to_last_finite_edge(self):
        hist = self.snap((1.0, 5.0), [100.0, 200.0])  # all in +Inf bucket
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(0.99) == 5.0

    def test_interpolation_within_a_uniform_bucket(self):
        # 4 observations in (1, 2]: p50 -> halfway through that bucket.
        hist = self.snap((1.0, 2.0), [1.1, 1.2, 1.8, 1.9])
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(0.25) == pytest.approx(1.25)

    def test_quantile_spans_multiple_buckets(self):
        hist = self.snap((1.0, 2.0, 4.0), [0.5, 1.5, 3.0, 3.5])
        assert hist.quantile(0.25) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(4.0)
        assert hist.quantile(0.5) == pytest.approx(2.0)

    def test_out_of_range_q_rejected(self):
        hist = self.snap((1.0,), [0.5])
        for bad in (-0.1, 1.1):
            with pytest.raises(MetricError):
                hist.quantile(bad)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    def test_quantile_is_monotone_and_bounded(self, values):
        hist = self.snap(DEFAULT_MS_BUCKETS, values)
        qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        estimates = [hist.quantile(q) for q in qs]
        assert estimates == sorted(estimates)
        assert all(0.0 <= e <= DEFAULT_MS_BUCKETS[-1] for e in estimates)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=900.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_brackets_the_true_bucket(self, values, q):
        """The estimate never leaves the bucket the true quantile is in:
        it is bounded by the bucket edges around the nearest-rank value."""
        import bisect

        hist = self.snap(DEFAULT_MS_BUCKETS, values)
        ordered = sorted(values)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - (q == 1.0)))
        true_value = ordered[rank] if q > 0 else ordered[0]
        index = bisect.bisect_left(DEFAULT_MS_BUCKETS, true_value)
        upper = DEFAULT_MS_BUCKETS[min(index, len(DEFAULT_MS_BUCKETS) - 1)]
        estimate = hist.quantile(q)
        assert estimate <= upper + 1e-9
