"""The BENCH regression gate (``benchmarks/regress.py``).

The acceptance contract: a planted 3x slowdown in a recorded baseline is
detected, an unchanged run passes without flagging, incompatible runs are
refused, and every gate run appends to the trajectory file.
"""

import copy
import json

import pytest

from benchmarks.regress import (
    Verdict,
    append_trajectory,
    check_compatibility,
    compare,
    flatten_metrics,
    main,
    parse_budgets,
    trajectory_entry,
)
from repro.obs.artifacts import run_metadata

pytestmark = pytest.mark.trace


def baseline_doc():
    return {
        "run": run_metadata(),
        "micro": {
            "delegate_read_4kb": {"median_ms": 0.10, "mad_ms": 0.005, "trials": 40},
            "cow_dict_insert": {"median_ms": 0.20, "mad_ms": 0.010, "trials": 40},
            "delegate_launch": {"median_ms": 1.00, "mad_ms": 0.050, "trials": 10},
        },
        "layers": {
            "vfs": {"self_ms": 2.0, "fraction": 0.5},
            "aufs": {"self_ms": 2.0, "fraction": 0.5},
        },
    }


def test_flatten_skips_metadata_and_non_numbers():
    flat = flatten_metrics(baseline_doc())
    assert flat["micro.delegate_launch.median_ms"] == 1.00
    assert flat["layers.vfs.self_ms"] == 2.0
    assert not any(key.startswith("run.") for key in flat)


def test_unchanged_run_passes_without_flagging():
    flat = flatten_metrics(baseline_doc())
    verdicts = compare(flat, dict(flat))
    assert verdicts, "gate compared nothing"
    assert not any(v.regressed for v in verdicts)
    assert not any(v.improved for v in verdicts)


def test_noise_within_k_mad_does_not_flag():
    base = flatten_metrics(baseline_doc())
    current = dict(base)
    current["micro.delegate_read_4kb.median_ms"] = 0.10 + 4 * 0.005  # < k=5 MADs
    assert not any(v.regressed for v in compare(current, base))


def test_planted_3x_slowdown_is_detected():
    base = flatten_metrics(baseline_doc())
    current = dict(base)
    current["micro.delegate_launch.median_ms"] = 3.0  # 3x the recorded 1.0
    regressed = [v for v in compare(current, base) if v.regressed]
    assert [v.metric for v in regressed] == ["micro.delegate_launch.median_ms"]
    verdict = regressed[0]
    assert verdict.current_ms == 3.0 and verdict.allowed_ms < 3.0
    assert "REGRESSED" in verdict.describe()


def test_planted_layer_blowup_is_detected_with_layer_budget():
    base = flatten_metrics(baseline_doc())
    current = dict(base)
    current["layers.aufs.self_ms"] = 6.0  # 3x over the 2x layer budget
    regressed = [v for v in compare(current, base) if v.regressed]
    assert [v.metric for v in regressed] == ["layers.aufs.self_ms"]


def test_per_group_budget_overrides_the_default():
    base = flatten_metrics(baseline_doc())
    current = dict(base)
    current["micro.cow_dict_insert.median_ms"] = 0.30  # +50%
    assert any(v.regressed for v in compare(current, base))
    relaxed = compare(current, base, budgets={"cow_dict_insert": 1.0})
    assert not any(v.regressed for v in relaxed)


def test_min_ms_floor_silences_microsecond_noise():
    base = {"micro.tiny.median_ms": 0.001, "micro.tiny.mad_ms": 0.0}
    current = {"micro.tiny.median_ms": 0.01}  # 10x but within the floor
    assert not any(v.regressed for v in compare(current, base, min_ms=0.02))


def test_improvements_are_reported_not_flagged():
    base = flatten_metrics(baseline_doc())
    current = dict(base)
    current["micro.delegate_launch.median_ms"] = 0.2
    verdicts = compare(current, base)
    assert any(v.improved for v in verdicts)
    assert not any(v.regressed for v in verdicts)


# ----------------------------------------------------------------------
# Compatibility refusal (stamped run metadata)
# ----------------------------------------------------------------------

def test_schema_version_mismatch_is_refused():
    base = baseline_doc()
    current = copy.deepcopy(base)
    current["run"]["schema_version"] = 99
    errors, _ = check_compatibility(current, base, strict=False)
    assert errors and "schema mismatch" in errors[0]


def test_platform_mismatch_warns_by_default_and_refuses_in_strict():
    base = baseline_doc()
    current = copy.deepcopy(base)
    current["run"]["python"] = "2.7.18"
    errors, warnings = check_compatibility(current, base, strict=False)
    assert not errors and warnings
    errors, _ = check_compatibility(current, base, strict=True)
    assert errors


def test_artifact_without_run_metadata_is_refused():
    base = baseline_doc()
    errors, _ = check_compatibility({"micro": {}}, base, strict=False)
    assert errors


# ----------------------------------------------------------------------
# Trajectory and CLI
# ----------------------------------------------------------------------

def test_append_trajectory_accumulates_entries(tmp_path):
    path = tmp_path / "BENCH_trajectory.json"
    append_trajectory(str(path), {"ok": True, "n": 1})
    history = append_trajectory(str(path), {"ok": False, "n": 2})
    assert [entry["n"] for entry in history] == [1, 2]
    assert json.loads(path.read_text()) == history


def test_trajectory_entry_shape():
    verdicts = [
        Verdict("micro.x.median_ms", "x", 1.0, 3.0, 1.5, True, False),
        Verdict("micro.y.median_ms", "y", 1.0, 1.0, 1.5, False, False),
    ]
    entry = trajectory_entry(baseline_doc(), verdicts, ok=False)
    assert entry["ok"] is False
    assert entry["checked"] == 2
    assert len(entry["regressions"]) == 1
    assert entry["metrics"]["micro.x.median_ms"] == 3.0
    assert entry["run"]["schema_version"] == run_metadata()["schema_version"]


def test_parse_budgets():
    assert parse_budgets(["vfs=0.5", "aufs=1"]) == {"vfs": 0.5, "aufs": 1.0}
    with pytest.raises(ValueError):
        parse_budgets(["vfs"])


def write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


def test_cli_end_to_end_pass_fail_and_refuse(tmp_path, capsys):
    base_path = write(tmp_path / "baseline.json", baseline_doc())
    current = baseline_doc()
    current_path = write(tmp_path / "current.json", current)
    trajectory = tmp_path / "BENCH_trajectory.json"

    args = ["--current", current_path, "--baseline", base_path,
            "--trajectory", str(trajectory)]
    assert main(args) == 0

    slow = copy.deepcopy(current)
    slow["micro"]["delegate_launch"]["median_ms"] = 3.0
    slow_path = write(tmp_path / "slow.json", slow)
    assert main(["--current", slow_path, "--baseline", base_path,
                 "--trajectory", str(trajectory)]) == 1
    assert main(["--current", slow_path, "--baseline", base_path,
                 "--trajectory", str(trajectory), "--warn-only"]) == 0

    incompatible = copy.deepcopy(current)
    incompatible["run"]["schema_version"] = 99
    bad_path = write(tmp_path / "bad.json", incompatible)
    assert main(["--current", bad_path, "--baseline", base_path,
                 "--trajectory", str(trajectory)]) == 2

    assert main(["--current", str(tmp_path / "missing.json"),
                 "--baseline", base_path]) == 2

    history = json.loads(trajectory.read_text())
    assert [entry["ok"] for entry in history] == [True, False, False]
    capsys.readouterr()  # swallow gate output


def test_committed_baseline_is_gate_compatible():
    """The baseline in the repo must carry current-schema run metadata
    and at least the micro metric set the gate compares."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "benchmarks", "BENCH_baseline.json")
    with open(path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    assert baseline["run"]["schema_version"] == run_metadata()["schema_version"]
    flat = flatten_metrics(baseline)
    assert any(key.endswith("median_ms") for key in flat)
    assert any(key.startswith("layers.") for key in flat)
