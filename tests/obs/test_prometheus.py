"""Prometheus text export, BENCH_obs.json artifacts, and the
``capture()`` save/restore contract.

The exporter is checked line-by-line against the exposition format
(counter ``_total`` suffix, cumulative histogram buckets, name
sanitisation); ``capture()`` is checked for the regression where a nested
capture dropped the enclosing enable's jsonl path and ring capacity.
"""

import json

import pytest

from repro.obs import OBS
from repro.obs.artifacts import (
    BENCH_OBS_ENV,
    bench_json_target,
    layer_section,
    update_bench_json,
)
from repro.obs.metrics import DEFAULT_MS_BUCKETS, Metrics, _prom_name

pytestmark = pytest.mark.trace


# ----------------------------------------------------------------------
# to_prometheus_text()
# ----------------------------------------------------------------------

def test_empty_registry_exports_empty_text():
    assert Metrics().to_prometheus_text() == ""


def test_counters_gain_total_suffix_and_type_line():
    metrics = Metrics()
    metrics.count("vfs.reads", 3)
    text = metrics.to_prometheus_text()
    assert "# TYPE vfs_reads_total counter\n" in text
    assert "vfs_reads_total 3\n" in text
    assert text.endswith("\n")


def test_names_are_sanitized_to_the_legal_charset():
    assert _prom_name("aufs.copy-up/ms") == "aufs_copy_up_ms"
    assert _prom_name("2fast") == "_2fast"
    metrics = Metrics()
    metrics.count("binder.transactions-failed")
    assert "binder_transactions_failed_total 1" in metrics.to_prometheus_text()


def test_histogram_buckets_are_cumulative_and_end_at_inf():
    metrics = Metrics()
    hist = metrics.histogram("latency.ms", boundaries=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 3.0, 20.0):
        hist.observe(value)
    text = metrics.to_prometheus_text()
    assert '# TYPE latency_ms histogram' in text
    assert 'latency_ms_bucket{le="1"} 2' in text
    assert 'latency_ms_bucket{le="5"} 3' in text
    assert 'latency_ms_bucket{le="10"} 3' in text
    assert 'latency_ms_bucket{le="+Inf"} 4' in text
    assert "latency_ms_sum 24.2" in text
    assert "latency_ms_count 4" in text


def test_gauges_render_integral_values_bare():
    metrics = Metrics()
    metrics.gauge("open.handles").set(7.0)
    assert "open_handles 7\n" in metrics.to_prometheus_text()


def test_export_is_deterministic_and_sorted():
    metrics = Metrics()
    metrics.count("b.second")
    metrics.count("a.first")
    text = metrics.to_prometheus_text()
    assert text.index("a_first_total") < text.index("b_second_total")
    assert text == metrics.to_prometheus_text()


# ----------------------------------------------------------------------
# Labels, HELP lines, and escaping
# ----------------------------------------------------------------------

def test_labels_attach_to_every_series_sorted_by_key():
    metrics = Metrics()
    metrics.count("vfs.reads", 2)
    metrics.gauge("open.handles").set(1.0)
    text = metrics.to_prometheus_text(labels={"zone": "eu", "device": "dev1"})
    assert 'vfs_reads_total{device="dev1",zone="eu"} 2' in text
    assert 'open_handles{device="dev1",zone="eu"} 1' in text


def test_histogram_le_label_comes_after_user_labels():
    metrics = Metrics()
    metrics.histogram("lat.op", boundaries=(1.0,)).observe(0.5)
    text = metrics.to_prometheus_text(labels={"device": "d"})
    assert 'lat_op_bucket{device="d",le="1"} 1' in text
    assert 'lat_op_bucket{device="d",le="+Inf"} 1' in text
    assert 'lat_op_sum{device="d"}' in text


def test_label_values_escape_quotes_backslashes_and_newlines():
    from repro.obs.metrics import escape_label_value

    assert escape_label_value('say "hi"') == 'say \\"hi\\"'
    assert escape_label_value("a\\b") == "a\\\\b"
    assert escape_label_value("two\nlines") == "two\\nlines"
    metrics = Metrics()
    metrics.count("c")
    text = metrics.to_prometheus_text(labels={"path": 'x\\y "z"\nw'})
    assert 'c_total{path="x\\\\y \\"z\\"\\nw"} 1' in text
    # The exposition stays one sample per line — the newline is escaped.
    assert len([l for l in text.splitlines() if l.startswith("c_total")]) == 1


def test_help_lines_precede_type_lines():
    metrics = Metrics()
    metrics.count("vfs.reads")
    text = metrics.to_prometheus_text(
        help_text={"vfs.reads": "reads through the\nsyscall layer"}
    )
    lines = text.splitlines()
    help_index = lines.index("# HELP vfs_reads_total reads through the\\nsyscall layer")
    type_index = lines.index("# TYPE vfs_reads_total counter")
    assert help_index == type_index - 1


def test_unlabeled_export_is_byte_identical_to_the_pre_label_format():
    metrics = Metrics()
    metrics.count("vfs.reads", 3)
    assert metrics.to_prometheus_text() == metrics.to_prometheus_text(labels={})
    assert "vfs_reads_total 3\n" in metrics.to_prometheus_text(labels=None)


# ----------------------------------------------------------------------
# BENCH_obs.json artifacts
# ----------------------------------------------------------------------

def test_bench_json_target_honours_the_env_var(monkeypatch):
    monkeypatch.delenv(BENCH_OBS_ENV, raising=False)
    assert bench_json_target() is None
    monkeypatch.setenv(BENCH_OBS_ENV, "0")
    assert bench_json_target() is None
    monkeypatch.setenv(BENCH_OBS_ENV, "1")
    assert bench_json_target() == "BENCH_obs.json"
    monkeypatch.setenv(BENCH_OBS_ENV, "/tmp/custom.json")
    assert bench_json_target() == "/tmp/custom.json"


def test_update_bench_json_merges_sections(tmp_path):
    target = tmp_path / "BENCH_obs.json"
    update_bench_json(str(target), "layers", {"vfs": {"self_ms": 1.0}})
    update_bench_json(str(target), "gate", {"disabled_pct": 0.5})
    update_bench_json(str(target), "layers", {"aufs": {"self_ms": 2.0}})
    data = json.loads(target.read_text())
    assert data["gate"] == {"disabled_pct": 0.5}
    assert data["layers"] == {"aufs": {"self_ms": 2.0}}  # section replaced


def test_layer_section_shapes_per_layer_self_times():
    with OBS.capture() as obs:
        with OBS.tracer.span("vfs.read", path="/x"):
            pass
        section = layer_section(obs.spans())
    assert "vfs" in section
    assert set(section["vfs"]) == {"self_ms", "fraction"}
    assert 0.0 <= section["vfs"]["fraction"] <= 1.0


# ----------------------------------------------------------------------
# capture() save/restore
# ----------------------------------------------------------------------

def test_capture_restores_prior_jsonl_path_and_ring_capacity(tmp_path):
    jsonl = str(tmp_path / "outer.jsonl")
    OBS.enable(jsonl_path=jsonl, ring_capacity=123)
    try:
        with OBS.capture(ring_capacity=999):
            assert OBS.tracer.ring.capacity == 999
        # The regression: restore used to re-enable with defaults,
        # silently dropping the sink and shrinking/growing the ring.
        assert OBS.enabled
        assert OBS.tracer.ring.capacity == 123
        with OBS.tracer.span("after.restore"):
            pass
    finally:
        OBS.disable()
        OBS.reset()
    lines = [json.loads(l) for l in open(jsonl) if l.strip()]
    assert any(rec["name"] == "after.restore" for rec in lines)


def test_capture_restores_prov_armed_state():
    OBS.enable()
    OBS.enable_prov()
    try:
        with OBS.capture():  # inner capture defaults prov off
            assert not OBS.prov
        assert OBS.prov, "outer prov arming lost across capture()"
    finally:
        OBS.disable()
        OBS.reset()
    assert not OBS.prov


def test_capture_from_disabled_leaves_everything_off():
    assert not OBS.enabled
    with OBS.capture(prov=True):
        assert OBS.enabled and OBS.prov
    assert not OBS.enabled and not OBS.prov


# ----------------------------------------------------------------------
# Per-span-name latency histograms (OBS.profile) in the export
# ----------------------------------------------------------------------

def test_profile_latency_histograms_are_exported():
    with OBS.capture(profile=True) as obs:
        for _ in range(3):
            with OBS.tracer.span("vfs.open", path="/x"):
                pass
        with OBS.tracer.span("aufs.copy_up"):
            pass
        text = obs.metrics.to_prometheus_text()
    assert "# TYPE lat_vfs_open histogram" in text
    assert "lat_vfs_open_count 3" in text
    assert 'lat_vfs_open_bucket{le="+Inf"} 3' in text
    assert "lat_aufs_copy_up_count 1" in text
    # Buckets are the default ms boundaries, cumulative to the count.
    first_edge = DEFAULT_MS_BUCKETS[0]
    assert f'lat_vfs_open_bucket{{le="{first_edge}"}}' in text


def test_latency_histograms_absent_when_profile_off():
    with OBS.capture() as obs:
        with OBS.tracer.span("vfs.open"):
            pass
        text = obs.metrics.to_prometheus_text()
    assert "lat_vfs_open" not in text


def test_latency_section_shapes_quantiles(tmp_path):
    from repro.obs.artifacts import latency_section

    with OBS.capture(profile=True) as obs:
        with OBS.tracer.span("cow.query"):
            pass
        section = latency_section(obs.metrics.snapshot())
    assert set(section) == {"cow.query"}
    row = section["cow.query"]
    assert row["count"] == 1
    assert {"mean_ms", "p50_ms", "p95_ms", "p99_ms"} <= set(row)
    target = tmp_path / "BENCH_obs.json"
    update_bench_json(str(target), "latency", section)
    data = json.loads(target.read_text())
    assert data["latency"]["cow.query"]["count"] == 1
    # Every artifact write stamps the run metadata used by regress.py.
    assert data["run"]["schema_version"] >= 1
    assert data["run"]["python"]
