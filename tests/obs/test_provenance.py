"""Unit tests for the provenance ledger: labels, taint flow, explain().

The lattice and ledger are exercised directly (no device) for the
algebra, then against a real device for the cross-layer flows: a
delegate's read of its initiator's Priv must taint the delegate process,
follow its writes into the initiator's volatile view, and survive the
initiator's commit to a public name — with ``explain()`` rendering the
whole chain back to the tainted source.
"""

import pytest

from repro import AndroidManifest, Device
from repro.obs import OBS
from repro.obs.provenance import Label, ProvenanceLedger, join_labels

pytestmark = [pytest.mark.trace, pytest.mark.prov]

A = "com.prov.initiator"
B = "com.prov.delegate"
C = "com.prov.other"


class _Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def device():
    device = Device(maxoid_enabled=True)
    for pkg in (A, B, C):
        device.install(AndroidManifest(package=pkg), _Nop())
    return device


# ----------------------------------------------------------------------
# The label lattice
# ----------------------------------------------------------------------

def test_label_lattice_ordering():
    assert (
        Label.public().rank
        < Label.vol(A).rank
        < Label.priv(A).rank
        < Label.dpriv(B, A).rank
    )


def test_label_rendering_matches_paper_notation():
    assert str(Label.public()) == "Public"
    assert str(Label.vol(A)) == f"Vol({A})"
    assert str(Label.priv(A)) == f"Priv({A})"
    assert str(Label.dpriv(B, A)) == f"Priv({B}^{A})"


def test_join_is_set_union_and_idempotent():
    x = frozenset([Label.priv(A)])
    y = frozenset([Label.vol(A), Label.priv(A)])
    joined = join_labels(x, y)
    assert joined == {Label.priv(A), Label.vol(A)}
    assert join_labels(joined, joined) == joined


def test_labels_are_hashable_value_objects():
    assert Label.priv(A) == Label.priv(A)
    assert Label.priv(A) != Label.priv(B)
    assert len({Label.priv(A), Label.priv(A), Label.dpriv(B, A)}) == 2


# ----------------------------------------------------------------------
# Ledger mechanics (no device)
# ----------------------------------------------------------------------

def test_read_taints_process_and_write_stamps_destination():
    ledger = ProvenanceLedger()
    ledger.fork(1, f"{B}^{A}")
    ledger.read(1, f"{B}^{A}", f"/data/data/{A}/doc.txt", ino=100)
    assert Label.priv(A) in ledger.process_taint(1)
    ledger.write(1, f"{B}^{A}", "/storage/sdcard/out.bin", ino=200)
    assert Label.priv(A) in ledger.taint_of(200)


def test_fork_clears_prior_taint():
    ledger = ProvenanceLedger()
    ledger.fork(1, B)
    ledger.read(1, B, f"/data/data/{B}/own.txt", ino=5)
    assert ledger.process_taint(1)
    ledger.fork(1, B)  # pid reuse: a fresh process starts clean
    assert ledger.process_taint(1) == frozenset()


def test_copy_up_propagates_source_labels_to_target_inode():
    ledger = ProvenanceLedger()
    ledger.fork(7, f"{B}^{A}")
    ledger.read(7, f"{B}^{A}", f"/data/data/{A}/in.pdf", ino=10)
    ledger.write(7, f"{B}^{A}", "/storage/sdcard/x.pdf", ino=11)
    ledger.copy_up(11, 12, "/storage/sdcard/x.pdf", mount="sdcard")
    assert Label.priv(A) in ledger.taint_of(12)


def test_row_write_and_commit_lineage():
    ledger = ProvenanceLedger()
    ledger.row_write("words_delta", 9001, op="cow.insert", initiator=A)
    assert Label.vol(A) in ledger.taint_of(("words_delta", 9001))
    ledger.row_commit("words", 42, "words_delta", 9001, A)
    lineage = ledger.explain(("words", 42))
    assert lineage
    assert lineage.derives_from("vol", A)
    assert "cow.commit" in lineage.render()


def test_clipboard_taint_crosses_domains():
    ledger = ProvenanceLedger()
    ledger.fork(1, f"{B}^{A}")
    ledger.read(1, f"{B}^{A}", f"/data/data/{A}/secret.txt", ino=3)
    ledger.clip_set(1, f"{B}^{A}", f"vol:{A}")
    ledger.fork(2, A)
    ledger.clip_get(2, A, f"vol:{A}")
    assert Label.priv(A) in ledger.process_taint(2)


def test_explain_unknown_target_is_falsy():
    ledger = ProvenanceLedger()
    lineage = ledger.explain("/storage/sdcard/nowhere.bin")
    assert not lineage
    assert lineage.steps == ()


def test_explain_chain_ends_at_tainted_source():
    ledger = ProvenanceLedger()
    ledger.fork(1, f"{B}^{A}")
    ledger.read(1, f"{B}^{A}", f"/data/data/{A}/doc.txt", ino=1)
    ledger.write(1, f"{B}^{A}", "/storage/sdcard/out.pdf", ino=2)
    lineage = ledger.explain("/storage/sdcard/out.pdf")
    assert lineage.steps[0].startswith("vol(") or lineage.steps[0].startswith("public")
    assert any("vfs.read" in step for step in lineage.steps)
    assert lineage.steps[-1].startswith("source ")
    assert Label.priv(A) in lineage.sources


def test_reset_clears_everything():
    ledger = ProvenanceLedger()
    ledger.fork(1, B)
    ledger.read(1, B, f"/data/data/{B}/x", ino=1)
    ledger.reset()
    assert ledger.process_taint(1) == frozenset()
    assert not ledger.explain(1)


# ----------------------------------------------------------------------
# Cross-layer flows on a real device
# ----------------------------------------------------------------------

def test_delegate_write_carries_initiator_priv_taint(device):
    owner = device.spawn(A)
    owner.write_internal("docs/secret.txt", b"the initiator's private bytes")
    with OBS.capture(prov=True) as obs:
        delegate = device.spawn(B, initiator=A)
        data = delegate.sys.read_file(f"/data/data/{A}/docs/secret.txt")
        delegate.write_external("out/copy.bin", data)
        taint = obs.provenance.taint_of("/storage/sdcard/out/copy.bin")
    assert Label.priv(A) in taint


def test_volatile_commit_preserves_lineage_across_views(device):
    """The delegate writes EXTDIR/x; the initiator sees it as EXTDIR/tmp/x
    and commits it — same inode, different virtual paths, one chain."""
    owner = device.spawn(A)
    owner.write_internal("docs/secret.txt", b"priv bytes")
    with OBS.capture(prov=True) as obs:
        delegate = device.spawn(B, initiator=A)
        data = delegate.sys.read_file(f"/data/data/{A}/docs/secret.txt")
        delegate.write_external("report.pdf", data)
        initiator = device.spawn(A)
        committed = initiator.volatile.commit("/storage/sdcard/tmp/report.pdf")
        lineage = obs.provenance.explain(committed)
    assert lineage, "committed file has no lineage"
    assert lineage.derives_from("priv", A)
    assert "vol.commit" in lineage.render()
    assert lineage.steps[-1].startswith("source ")


def test_prov_disarmed_records_nothing(device):
    api = device.spawn(B)
    with OBS.capture() as obs:  # prov defaults to off
        api.write_external("plain.bin", b"x")
        api.sys.read_file("/storage/sdcard/plain.bin")
        assert not OBS.prov
        assert obs.provenance.taint_of("/storage/sdcard/plain.bin") == frozenset()


def test_prov_events_appear_in_the_trace(device):
    with OBS.capture(prov=True) as obs:
        api = device.spawn(B)
        api.write_external("traced.bin", b"x")
        names = {span.name for span in obs.spans()}
    assert "prov.write" in names
    assert "prov.fork" in names
