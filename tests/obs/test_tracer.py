"""Tracer unit tests: nesting, sinks, zero-cost disabled path semantics."""

import json

import pytest

from repro.errors import FileNotFound
from repro.obs import OBS, Observability, build_trees
from repro.obs.trace import NOOP_SPAN, JsonlSink, RingBufferSink, Tracer

pytestmark = pytest.mark.trace


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer()
        span = t.span("vfs.open", path="/x")
        assert span is NOOP_SPAN
        with span as s:
            s.set(anything="goes")
            s.event("noop.event")
        assert t.finished() == []

    def test_disabled_event_records_nothing(self):
        t = Tracer()
        t.event("am.something", detail=1)
        assert t.finished() == []


class TestNesting:
    def test_children_inherit_trace_and_parent(self, tracer):
        with tracer.span("am.start_activity") as parent:
            with tracer.span("zygote.fork") as child:
                with tracer.span("vfs.open") as grandchild:
                    pass
        spans = {s.name: s for s in tracer.finished()}
        assert spans["zygote.fork"].parent_id == spans["am.start_activity"].span_id
        assert spans["vfs.open"].parent_id == spans["zygote.fork"].span_id
        assert (
            spans["vfs.open"].trace_id
            == spans["zygote.fork"].trace_id
            == spans["am.start_activity"].trace_id
        )

    def test_siblings_share_parent(self, tracer):
        with tracer.span("am.start_activity"):
            with tracer.span("vfs.read"):
                pass
            with tracer.span("vfs.write"):
                pass
        roots = tracer.trees()
        assert len(roots) == 1
        assert [c.name for c in roots[0].children] == ["vfs.read", "vfs.write"]

    def test_separate_roots_get_separate_traces(self, tracer):
        with tracer.span("vfs.read"):
            pass
        with tracer.span("vfs.write"):
            pass
        a, b = tracer.finished()
        assert a.trace_id != b.trace_id

    def test_exception_marks_span_error(self, tracer):
        with pytest.raises(FileNotFound):
            with tracer.span("vfs.open", path="/missing"):
                raise FileNotFound("/missing")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert span.attrs["error"] == "FileNotFound"

    def test_event_is_zero_duration_child(self, tracer):
        with tracer.span("aufs.open"):
            tracer.event("aufs.copy_up", bytes=42)
        spans = {s.name: s for s in tracer.finished()}
        assert spans["aufs.copy_up"].parent_id == spans["aufs.open"].span_id

    def test_layer_is_prefix_before_dot(self, tracer):
        with tracer.span("cow.query") as span:
            pass
        assert span.layer == "cow"


class TestSinks:
    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        t = Tracer()
        t.enable(capacity=3)
        for i in range(5):
            with t.span(f"vfs.op{i}"):
                pass
        assert [s.name for s in t.finished()] == ["vfs.op2", "vfs.op3", "vfs.op4"]
        assert t.ring.dropped == 2

    def test_jsonl_sink_writes_one_valid_line_per_span(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        t = Tracer()
        t.enable(jsonl_path=path)
        with t.span("am.start_activity", target="com.app"):
            with t.span("vfs.open", path="/f"):
                pass
        t.disable()
        lines = [json.loads(line) for line in open(path)]
        assert [rec["name"] for rec in lines] == ["vfs.open", "am.start_activity"]
        assert lines[1]["attrs"]["target"] == "com.app"
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_disable_closes_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        t = Tracer()
        t.enable(jsonl_path=path)
        t.disable()
        # Re-enabling without a path must not resurrect the closed sink.
        t.enable()
        with t.span("vfs.open"):
            pass
        assert open(path).read() == ""


class TestTreeBuilding:
    def test_orphans_promote_to_roots(self, tracer):
        with tracer.span("am.start_activity"):
            with tracer.span("vfs.open"):
                pass
        # Drop the parent, as ring eviction would.
        orphan = [s for s in tracer.finished() if s.name == "vfs.open"]
        roots = build_trees(orphan)
        assert len(roots) == 1 and roots[0].name == "vfs.open"

    def test_walk_and_find(self, tracer):
        with tracer.span("am.start_activity"):
            with tracer.span("vfs.open"):
                pass
            with tracer.span("vfs.open"):
                pass
        (root,) = tracer.trees()
        assert len(root.find("vfs.open")) == 2
        assert root.layers() == {"am", "vfs"}
        assert "am.start_activity" in root.render()


class TestObservabilityFacade:
    def test_capture_enables_then_restores(self):
        obs = Observability()
        assert not obs.enabled
        with obs.capture() as captured:
            assert captured is obs and obs.enabled
        assert not obs.enabled

    def test_capture_restores_prior_enabled_state(self):
        obs = Observability()
        obs.enable()
        with obs.capture():
            pass
        assert obs.enabled
        obs.disable()

    def test_capture_starts_from_clean_slate(self):
        obs = Observability()
        obs.enable()
        with obs.tracer.span("vfs.open"):
            pass
        obs.metrics.count("vfs.open")
        with obs.capture():
            assert obs.spans() == []
            assert obs.metrics.snapshot().counters == {}

    def test_global_instance_is_disabled_by_default(self):
        assert not OBS.enabled
