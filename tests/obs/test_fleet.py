"""Fleet telemetry: shard/merge correctness, cardinality cap, sampling
determinism, merged violation feeds, and the fleet_health() report.

The acceptance properties pinned here:

- per-device series in the labeled export equal what each device would
  export in isolation (sharding is invisible to a scrape consumer);
- merged counter totals equal the sum of per-device values, and merged
  histograms merge bucket-wise;
- the same workload under the same sampling seed produces a
  byte-identical ``fleet_health().render()``;
- beyond the cardinality cap, devices fold into one ``_other`` series
  whose values are the sum of the folded shards.
"""

import pytest

from repro.android.packages import AndroidManifest
from repro.core.device import Device
from repro.obs import ObsContext
from repro.obs.fleet import (
    OVERFLOW_DEVICE,
    FleetError,
    FleetTelemetry,
)

pytestmark = pytest.mark.trace

APP = "com.fleet.app"
INITIATOR = "com.fleet.initiator"


def _loaded_device(device_id: str, writes: int) -> Device:
    device = Device(maxoid_enabled=True, device_id=device_id)
    device.obs.enable()
    device.install(AndroidManifest(package=APP))
    device.install(AndroidManifest(package=INITIATOR))
    api = device.spawn(APP, initiator=INITIATOR)
    for index in range(writes):
        api.write_internal(f"f{index}.bin", b"x" * 64)
    return device


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

def test_register_rejects_duplicate_device_ids():
    fleet = FleetTelemetry()
    fleet.register(ObsContext(device_id="dup"))
    with pytest.raises(FleetError):
        fleet.register(ObsContext(device_id="dup"))


def test_register_same_context_twice_is_idempotent():
    fleet = FleetTelemetry()
    ctx = ObsContext(device_id="one")
    fleet.register(ctx)
    fleet.register(ctx)
    assert len(fleet) == 1


# ----------------------------------------------------------------------
# Shard/merge correctness
# ----------------------------------------------------------------------

def test_merged_counters_equal_sum_of_per_device_values():
    fleet = FleetTelemetry()
    devices = [_loaded_device(f"dev{i}", writes=i + 1) for i in range(3)]
    for device in devices:
        fleet.register_device(device)
    per = fleet.per_device_metrics()
    merged = fleet.merged_metrics()
    names = {name for snap in per.values() for name in snap.counters}
    assert names, "workload produced no counters"
    for name in names:
        assert merged.counters[name] == sum(
            snap.counters.get(name, 0) for snap in per.values()
        )
    # The per-device shards saw different workloads: isolation held.
    assert per["dev0"].counters["vfs.write"] < per["dev2"].counters["vfs.write"]


def test_merged_histograms_merge_bucketwise():
    fleet = FleetTelemetry()
    a = ObsContext(device_id="a")
    b = ObsContext(device_id="b")
    a.metrics.histogram("lat.op", boundaries=(1.0, 10.0)).observe(0.5)
    b.metrics.histogram("lat.op", boundaries=(1.0, 10.0)).observe(5.0)
    b.metrics.histogram("lat.op", boundaries=(1.0, 10.0)).observe(50.0)
    fleet.register(a)
    fleet.register(b)
    merged = fleet.merged_metrics().histograms["lat.op"]
    assert merged.count == 3
    assert merged.counts == (1, 1, 1)
    assert merged.total == pytest.approx(55.5)


def test_labeled_series_equal_isolation_export():
    """The fleet export's per-device series must be what each device
    would export alone with the same label attached."""
    fleet = FleetTelemetry()
    devices = [_loaded_device(f"dev{i}", writes=2) for i in range(2)]
    for device in devices:
        fleet.register_device(device)
    fleet_lines = set(fleet.to_prometheus_text().splitlines())
    for device in devices:
        solo = device.obs.metrics.to_prometheus_text(
            labels={"device": device.device_id}
        )
        for line in solo.splitlines():
            if line.startswith("#"):
                continue  # headers are emitted once per family fleet-wide
            assert line in fleet_lines, f"missing series line: {line}"


def test_prometheus_families_are_contiguous():
    """All samples of a family sit under one # TYPE header (the format
    forbids interleaving families)."""
    fleet = FleetTelemetry()
    for device in (_loaded_device("a", 1), _loaded_device("b", 1)):
        fleet.register_device(device)
    current_family = None
    for line in fleet.to_prometheus_text().splitlines():
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert family != current_family
            current_family = family
        elif line and not line.startswith("#"):
            name = line.split("{")[0].split(" ")[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if current_family and name == current_family + suffix:
                    name = current_family
            assert name == current_family, f"{name} outside its family block"


# ----------------------------------------------------------------------
# Cardinality cap
# ----------------------------------------------------------------------

def test_cardinality_cap_folds_overflow_devices():
    fleet = FleetTelemetry(max_label_devices=2)
    contexts = [ObsContext(device_id=f"dev{i}") for i in range(4)]
    for index, ctx in enumerate(contexts):
        ctx.metrics.count("ops", index + 1)  # 1, 2, 3, 4
        fleet.register(ctx)
    text = fleet.to_prometheus_text()
    assert 'ops_total{device="dev0"} 1' in text
    assert 'ops_total{device="dev1"} 2' in text
    assert f'ops_total{{device="{OVERFLOW_DEVICE}"}} 7' in text  # 3 + 4
    assert 'device="dev2"' not in text and 'device="dev3"' not in text
    # The cap bounds label values, not data: totals are preserved.
    assert fleet.merged_metrics().counters["ops"] == 10


def test_cap_must_be_positive():
    with pytest.raises(FleetError):
        FleetTelemetry(max_label_devices=0)


# ----------------------------------------------------------------------
# Spans and device stamping
# ----------------------------------------------------------------------

def test_merged_spans_carry_their_device_id():
    fleet = FleetTelemetry()
    devices = [_loaded_device(f"dev{i}", writes=1) for i in range(2)]
    for device in devices:
        fleet.register_device(device)
    spans = fleet.spans()
    assert spans, "no spans recorded"
    by_device = {span.device_id for span in spans}
    assert by_device == {"dev0", "dev1"}
    for span in spans:
        assert span.to_dict()["device_id"] == span.device_id
        assert span.trace_id is not None


# ----------------------------------------------------------------------
# Violations feed
# ----------------------------------------------------------------------

def test_violation_feed_is_ordered_by_seq_then_device():
    from repro.core.audit import AuditLog

    fleet = FleetTelemetry()
    log_b = AuditLog(device_id="b")
    log_a = AuditLog(device_id="a")
    log_b.record_violation("S1", "b first")
    log_b.record_violation("S2", "b second")
    log_a.record_violation("S1", "a first")
    fleet.register(ObsContext(device_id="b"), audit_log=log_b)
    fleet.register(ObsContext(device_id="a"), audit_log=log_a)
    feed = fleet.violations()
    assert [(e.seq, e.device_id) for e in feed] == [(1, "a"), (1, "b"), (2, "b")]
    assert [e.message for e in feed] == ["a first", "b first", "b second"]


# ----------------------------------------------------------------------
# fleet_health() determinism
# ----------------------------------------------------------------------

def _run_fleet(seed: int) -> str:
    fleet = FleetTelemetry()
    for index in range(2):
        device = Device(maxoid_enabled=True, device_id=f"dev{index}")
        device.obs.enable(sample_rate=0.5, sample_seed=seed)
        device.obs.enable_profile()
        device.install(AndroidManifest(package=APP))
        device.install(AndroidManifest(package=INITIATOR))
        api = device.spawn(APP, initiator=INITIATOR)
        for step in range(6):
            api.write_internal(f"f{step}.bin", b"y" * 32)
        fleet.register_device(device)
    return fleet.fleet_health().render()


def test_fleet_health_is_byte_identical_for_the_same_seed():
    assert _run_fleet(seed=42) == _run_fleet(seed=42)


def test_fleet_health_counts_devices_spans_and_offenders():
    fleet = FleetTelemetry()
    device = _loaded_device("solo", writes=3)
    device.obs.enable_profile()
    api = device.spawn(APP, initiator=INITIATOR)
    api.write_internal("profiled.bin", b"z")
    fleet.register_device(device)
    report = fleet.fleet_health(top_k=3)
    assert len(report.devices) == 1
    row = report.devices[0]
    assert row.device_id == "solo"
    assert row.spans_started > 0
    assert report.total_spans == row.spans_started
    assert len(report.top_latencies) <= 3
    assert all(name.startswith("lat.") for name, _c, _m in report.top_latencies)
    # Ranked by count descending.
    counts = [count for _n, count, _m in report.top_latencies]
    assert counts == sorted(counts, reverse=True)
    # The default render never contains wall-clock values; verbose does.
    assert "ms" not in report.render()
    if report.top_latencies:
        assert "mean=" in report.render(verbose=True)
    data = report.to_dict()
    assert data["total_spans"] == report.total_spans
    assert data["devices"][0]["device_id"] == "solo"


# ----------------------------------------------------------------------
# Sampling determinism across devices
# ----------------------------------------------------------------------

def test_same_seed_samples_the_same_trace_roots():
    def traced(seed: int):
        ctx = ObsContext(device_id=f"s{seed}")
        ctx.enable(sample_rate=0.3, sample_seed=seed)
        kept = []
        for index in range(40):
            with ctx.tracer.span("op", i=index):
                pass
        for span in ctx.tracer.finished():
            kept.append(span.attrs["i"])
        return kept

    assert traced(7) == traced(7)
    assert traced(7) != traced(8)  # a different seed samples differently


def test_sampled_out_roots_drop_descendants_too():
    ctx = ObsContext(device_id="deep")
    ctx.enable(sample_rate=0.0, sample_seed=1)  # drop everything
    with ctx.tracer.span("root"):
        with ctx.tracer.span("child"):
            pass
    assert ctx.tracer.finished() == []
    assert ctx.tracer.sampled_out == 1  # one root, counted once
    assert ctx.tracer.started == 0
