"""End-to-end instrumentation: one delegate invocation, one span tree.

The acceptance bar for the obs subsystem: with tracing enabled, a single
delegate invocation yields a single connected trace tree that crosses the
AM, zygote, syscall/vfs, aufs, and COW-proxy layers, and the metrics
registry accounts for the per-layer operations the invocation performed.
"""

import pytest

from repro import AndroidManifest, Device, Intent
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.obs import OBS, layer_self_times
from repro.workloads.harness import measure

pytestmark = pytest.mark.trace

INITIATOR = "com.obs.initiator"
WORKER = "com.obs.worker"
WORDS = Uri.content("user_dictionary", "words")


class _Worker:
    """Touches every layer: public file append (copy-up), a new external
    file, and a provider insert (binder -> COW proxy -> SQL engine)."""

    def main(self, api, intent):
        api.sys.append_file("/storage/sdcard/shared/notes.txt", b" worker-was-here")
        api.write_external("worker/out.bin", b"x" * 2048)
        api.insert(
            WORDS, ContentValues({"word": "traced", "frequency": 2, "locale": "en"})
        )
        return "ok"


class _NopApp:
    def main(self, api, intent):
        return None


@pytest.fixture
def traced_device():
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=INITIATOR), _NopApp())
    device.install(AndroidManifest(package=WORKER), _Worker())
    seed = device.spawn(INITIATOR)
    seed.sys.makedirs("/storage/sdcard/shared")
    seed.sys.write_file("/storage/sdcard/shared/notes.txt", b"seed content")
    return device


def test_delegate_invocation_yields_one_connected_tree(traced_device):
    with OBS.capture() as obs:
        invocation = traced_device.launch_as_delegate(
            WORKER, INITIATOR, Intent("android.intent.action.MAIN")
        )
    assert invocation.result == "ok"
    roots = [t for t in obs.trees() if t.name == "am.start_activity"]
    assert len(roots) == 1, "the delegate invocation must produce one AM root span"
    tree = roots[0]
    # The acceptance criterion: every layer present in ONE connected tree.
    assert {"am", "zygote", "vfs", "aufs", "cow"} <= tree.layers()
    # The COW write rode Binder into the provider and hit the SQL engine.
    assert "binder" in tree.layers() and "sql" in tree.layers()
    # The root span is attributed to the delegate context.
    assert tree.span.attrs["ctx"] == f"{WORKER}^{INITIATOR}"


def test_copy_up_span_appears_under_the_delegates_write(traced_device):
    with OBS.capture() as obs:
        traced_device.launch_as_delegate(
            WORKER, INITIATOR, Intent("android.intent.action.MAIN")
        )
    (tree,) = [t for t in obs.trees() if t.name == "am.start_activity"]
    copy_ups = tree.find("aufs.copy_up")
    assert copy_ups, "appending to a public file as a delegate must copy up"
    assert copy_ups[0].span.attrs["path"].endswith("notes.txt")


def test_metrics_account_for_the_invocation(traced_device):
    with OBS.capture() as obs:
        before = obs.metrics.snapshot()
        traced_device.launch_as_delegate(
            WORKER, INITIATOR, Intent("android.intent.action.MAIN")
        )
        delta = obs.metrics.snapshot() - before
    assert delta.counter("zygote.forks") == 1
    assert delta.counter("am.invocations") == 1
    assert delta.counter("am.delegate_invocations") == 1
    assert delta.counter("aufs.copy_up") == 1
    assert delta.counter("vfs.write") >= 2
    assert delta.counter("sql.statements") >= 1
    assert delta.counter("cow.insert") >= 1
    assert delta.histograms["vfs.write.bytes"].count == delta.counter("vfs.write")


def test_layer_self_times_cover_every_traced_layer(traced_device):
    with OBS.capture() as obs:
        traced_device.launch_as_delegate(
            WORKER, INITIATOR, Intent("android.intent.action.MAIN")
        )
    times = layer_self_times(obs.spans())
    for layer in ("am", "zygote", "vfs", "aufs", "cow", "sql"):
        assert times.get(layer, 0.0) > 0.0, f"no self time attributed to {layer}"


def test_harness_capture_metrics_attaches_layer_breakdown(traced_device):
    api = traced_device.spawn(INITIATOR)
    measurement = measure(
        lambda: api.sys.read_file("/storage/sdcard/shared/notes.txt"),
        trials=5,
        warmup=1,
        label="read",
        capture_metrics=True,
    )
    assert measurement.metrics_delta is not None
    assert measurement.metrics_delta.counter("vfs.read") == 5
    layers = measurement.layer_counters()
    assert "vfs" in layers and "mounts" in layers
    assert not OBS.enabled, "measure() must restore the disabled state"


def test_jsonl_dump_from_a_device_run(traced_device, tmp_path):
    path = str(tmp_path / "delegate.jsonl")
    with OBS.capture(jsonl_path=path):
        traced_device.launch_as_delegate(
            WORKER, INITIATOR, Intent("android.intent.action.MAIN")
        )
    lines = open(path).read().strip().splitlines()
    assert len(lines) > 10
    assert any('"am.start_activity"' in line for line in lines)
