"""The ``OBS.profile`` sub-switch and the critical-path analyzer.

Hand-built span trees with pinned start/end times make the critical-path
assertions exact; the switch tests exercise the real tracer through
``OBS.capture(profile=True)``.
"""

import pytest

from repro import AndroidManifest, Device
from repro.obs import (
    OBS,
    SPAN_LATENCY_PREFIX,
    ProfileRecorder,
    critical_path,
    critical_paths,
    latency_summary,
)
from repro.obs.metrics import Metrics
from repro.obs.trace import Span, build_trees

pytestmark = pytest.mark.trace

APP = "com.obs.profile"


def make_span(span_id, parent_id, name, start_ms, end_ms, **attrs):
    """A finished span with pinned times (ms scale for readability)."""
    span = Span(
        tracer=None, trace_id=1, span_id=span_id, parent_id=parent_id,
        name=name, attrs=attrs,
    )
    span.start = start_ms / 1000.0
    span.end = end_ms / 1000.0
    return span


def delegate_invocation_tree():
    """A synthetic AM -> zygote/vfs -> aufs chain, 10 ms total:
    am self 3, zygote self 2, vfs self 1, aufs self 4."""
    spans = [
        make_span(3, 2, "aufs.copy_up", 5.0, 9.0),
        make_span(2, 1, "vfs.open", 4.0, 9.0, ctx="b^a"),
        make_span(4, 1, "zygote.fork", 1.0, 3.0),
        make_span(1, None, "am.start_activity", 0.0, 10.0, ctx="b^a"),
    ]
    trees = build_trees(spans)
    assert len(trees) == 1
    return trees[0]


# ----------------------------------------------------------------------
# critical_path()
# ----------------------------------------------------------------------

def test_critical_path_layer_attribution_is_exact():
    report = critical_path(delegate_invocation_tree())
    assert report.total_ms == pytest.approx(10.0)
    assert report.by_layer == {
        "am": pytest.approx(3.0),
        "zygote": pytest.approx(2.0),
        "vfs": pytest.approx(1.0),
        "aufs": pytest.approx(4.0),
    }
    assert report.attributed_ms == pytest.approx(10.0)
    assert report.coverage == pytest.approx(1.0)
    assert report.hottest_layer == "aufs"


def test_critical_path_follows_the_most_expensive_child():
    report = critical_path(delegate_invocation_tree())
    # vfs.open (5 ms) beats zygote.fork (2 ms) at the first level.
    assert [step.name for step in report.steps] == [
        "am.start_activity", "vfs.open", "aufs.copy_up",
    ]
    assert report.steps[-1].self_ms == pytest.approx(4.0)
    assert report.hot_chain_ms == pytest.approx(8.0)  # 3 + 1 + 4


def test_critical_path_single_span_tree():
    tree = build_trees([make_span(1, None, "vfs.read", 0.0, 2.0)])[0]
    report = critical_path(tree)
    assert report.coverage == pytest.approx(1.0)
    assert len(report.steps) == 1
    assert "vfs.read" in report.render()


def test_critical_paths_sorts_slowest_first_and_filters():
    trees = build_trees([
        make_span(1, None, "am.fast", 0.0, 1.0),
        make_span(2, None, "am.slow", 2.0, 9.0),
    ])
    reports = critical_paths(trees, min_ms=0.5)
    assert [r.root for r in reports] == ["am.slow", "am.fast"]
    assert critical_paths(trees, min_ms=5.0)[0].root == "am.slow"
    assert len(critical_paths(trees, min_ms=5.0)) == 1


def test_report_to_dict_round_trips_through_json():
    import json

    report = critical_path(delegate_invocation_tree())
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["root"] == "am.start_activity"
    assert doc["coverage"] == pytest.approx(1.0)
    assert [step["name"] for step in doc["hot_chain"]][0] == "am.start_activity"
    assert set(doc["by_layer"]) == {"am", "zygote", "vfs", "aufs"}


# ----------------------------------------------------------------------
# The OBS.profile switch
# ----------------------------------------------------------------------

@pytest.fixture
def api():
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=APP), object())
    api = device.spawn(APP)
    api.sys.makedirs("/storage/sdcard/p")
    api.sys.write_file("/storage/sdcard/p/file.bin", b"x" * 512)
    return api


def test_profile_capture_records_latency_histograms(api):
    with OBS.capture(profile=True) as obs:
        assert OBS.profile
        for _ in range(5):
            api.sys.read_file("/storage/sdcard/p/file.bin")
        snapshot = obs.metrics.snapshot()
    summary = latency_summary(snapshot)
    assert "vfs.read" in summary and "vfs.open" in summary
    row = summary["vfs.read"]
    assert row["count"] == 5
    assert 0.0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
    # Switch and listener are both gone after the capture.
    assert not OBS.profile
    assert OBS.profiler.on_span not in OBS.tracer._listeners


def test_profile_off_records_no_latency_histograms(api):
    with OBS.capture() as obs:  # tracing on, profile off
        api.sys.read_file("/storage/sdcard/p/file.bin")
        snapshot = obs.metrics.snapshot()
    assert not any(
        name.startswith(SPAN_LATENCY_PREFIX) for name in snapshot.histograms
    ), "profile-off capture still produced lat.* histograms"


def test_capture_restores_profile_armed_state():
    OBS.enable()
    OBS.enable_profile()
    try:
        with OBS.capture():  # inner capture defaults profile off
            assert not OBS.profile
        assert OBS.profile, "outer profile arming lost across capture()"
        assert OBS.profiler.on_span in OBS.tracer._listeners
    finally:
        OBS.disable()
        OBS.reset()
    assert not OBS.profile


def test_enable_profile_implies_enable_and_is_idempotent():
    assert not OBS.enabled
    OBS.enable_profile()
    try:
        assert OBS.enabled and OBS.profile
        OBS.enable_profile()
        assert OBS.tracer._listeners.count(OBS.profiler.on_span) == 1
    finally:
        OBS.disable()
        OBS.reset()


def test_recorder_feeds_the_given_registry():
    metrics = Metrics()
    recorder = ProfileRecorder(metrics)
    recorder.on_span(make_span(1, None, "cow.query", 0.0, 2.0))
    recorder.on_span(make_span(2, None, "cow.query", 0.0, 4.0))
    snap = metrics.snapshot()
    hist = snap.histograms[SPAN_LATENCY_PREFIX + "cow.query"]
    assert hist.count == 2
    assert hist.total == pytest.approx(6.0)
    assert recorder.spans_seen == 2


def test_latency_summary_ignores_foreign_histograms():
    metrics = Metrics()
    metrics.observe("vfs.read.bytes", 100.0)
    metrics.observe(SPAN_LATENCY_PREFIX + "vfs.read", 1.0)
    summary = latency_summary(metrics.snapshot())
    assert list(summary) == ["vfs.read"]
