"""Per-device context isolation, including under the deterministic
scheduler.

Two devices recording concurrently must keep disjoint tracers, metric
registries, provenance actor stacks, sinks and listeners — both when
their flows run sequentially and when ``repro.sched`` interleaves them
at every yield point (the scheduler swaps *every* live context's span
and actor stacks per task, not just the default ``OBS`` ones).
"""

import pytest

from repro.android.packages import AndroidManifest
from repro.core.device import Device
from repro.obs import OBS, ObsContext, obs_contexts
from repro.sched import SCHED

pytestmark = pytest.mark.trace

APP = "com.iso.app"
INITIATOR = "com.iso.initiator"


def _device(device_id: str) -> Device:
    device = Device(maxoid_enabled=True, device_id=device_id)
    device.install(AndroidManifest(package=APP))
    device.install(AndroidManifest(package=INITIATOR))
    return device


# ----------------------------------------------------------------------
# Plain (unscheduled) isolation
# ----------------------------------------------------------------------

def test_devices_record_into_disjoint_contexts():
    left = _device("left")
    right = _device("right")
    left.obs.enable()
    right.obs.enable()
    api = left.spawn(APP, initiator=INITIATOR)
    api.write_internal("only-left.bin", b"L")
    assert left.obs.tracer.started > 0
    assert right.obs.tracer.started == 0
    assert right.obs.metrics.snapshot().counters == {}
    assert all(s.device_id == "left" for s in left.obs.spans())
    left.obs.disable()
    right.obs.disable()


def test_bare_device_still_attaches_to_the_global_obs():
    device = Device(maxoid_enabled=True)
    assert device.obs is OBS
    assert device.zygote.obs is OBS
    assert device.binder.obs is OBS


def test_named_device_contexts_are_registered_for_the_scheduler():
    device = _device("registered")
    assert device.obs in obs_contexts()


def test_forked_processes_inherit_the_device_context():
    device = _device("inherit")
    api = device.spawn(APP, initiator=INITIATOR)
    assert api.process.obs is device.obs
    # The syscall layer resolves through the process too.
    assert api.sys.obs is device.obs


def test_capture_on_one_device_does_not_disturb_the_other():
    left = _device("cap-left")
    right = _device("cap-right")
    right.obs.enable()
    right_before = right.obs.tracer.started
    with left.obs.capture(prov=True) as obs:
        api = left.spawn(APP, initiator=INITIATOR)
        api.write_internal("x.bin", b"x")
        assert obs.tracer.started > 0
    assert right.obs.tracer.started == right_before
    assert not left.obs.enabled
    assert right.obs.enabled  # untouched by the sibling's capture exit
    right.obs.disable()


# ----------------------------------------------------------------------
# Interleaved under the deterministic scheduler (satellite: concurrent
# capture isolation)
# ----------------------------------------------------------------------

def _traced_flow(device: Device, tag: str, steps: int = 4):
    """One task body: a traced, provenance-armed delegate flow that
    yields to the scheduler between operations."""

    def fn():
        api = device.spawn(APP, initiator=INITIATOR)
        for index in range(steps):
            SCHED.yield_point(f"{tag}.write.{index}")
            api.write_internal(f"{tag}-{index}.bin", b"d")
        return device.obs.tracer.started

    return fn


def test_interleaved_captures_keep_sinks_and_spans_separate():
    left = _device("sched-left")
    right = _device("sched-right")
    with left.obs.capture(prov=True) as lobs, right.obs.capture(prov=True) as robs:
        run = SCHED.run(
            {
                "left": _traced_flow(left, "L"),
                "right": _traced_flow(right, "R"),
            },
            seed=11,
        )
        assert run.errors == {}
        left_spans = lobs.spans()
        right_spans = robs.spans()
    assert left_spans and right_spans
    assert {s.device_id for s in left_spans} == {"sched-left"}
    assert {s.device_id for s in right_spans} == {"sched-right"}
    # Both flows ran to completion with their own tracers armed.
    assert run.results["left"] > 0 and run.results["right"] > 0
    # No half-open spans leaked out of either context.
    assert left.obs.tracer._stack == []
    assert right.obs.tracer._stack == []
    assert left.obs.provenance._actors == []
    assert right.obs.provenance._actors == []


def test_interleaved_runs_match_sequential_span_counts():
    """Interleaving must not lose or cross-record spans: each device
    records exactly what it records when it runs alone."""

    def span_names(spans):
        names = {}
        for span in spans:
            names[span.name] = names.get(span.name, 0) + 1
        return names

    solo = _device("solo-count")
    with solo.obs.capture() as obs:
        _traced_flow(solo, "S")()
        expected = span_names(obs.spans())

    left = _device("pair-left")
    right = _device("pair-right")
    with left.obs.capture() as lobs, right.obs.capture() as robs:
        SCHED.run(
            {
                "left": _traced_flow(left, "S"),
                "right": _traced_flow(right, "S"),
            },
            seed=3,
        )
        assert span_names(lobs.spans()) == expected
        assert span_names(robs.spans()) == expected


def test_scheduler_restores_the_driver_stacks_of_every_context():
    ctx = ObsContext(device_id="driver")
    ctx.enable()
    with ctx.tracer.span("driver.outer"):
        run = SCHED.run(
            {"t": lambda: SCHED.yield_point("t.only")},
            seed=0,
        )
        assert run.errors == {}
        # Back on the driver: the outer span is still the open one.
        assert ctx.tracer.current is not None
        assert ctx.tracer.current.name == "driver.outer"
    ctx.disable()
