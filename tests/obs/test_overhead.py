"""Disabled-tracer fast-path overhead regression.

The instrumentation contract is "zero cost when disabled": every hot-path
hook is a single ``if OBS.enabled:`` attribute check. This test measures a
VFS read/write microloop through the instrumented entry points (gate
present, observability off) against the same loop through the ungated
implementation methods, i.e. exactly the code the seed ran.

The nominal budget is <5%; the assertion uses a deliberately generous
bound so a noisy CI machine cannot flake the suite, while still catching a
regression that puts real work (dict lookups, span allocation, kwargs
building) on the disabled path. To keep the comparison deterministic on a
shared machine the two loops are interleaved round by round and compared
on their best (minimum) round time: the gate's cost is deterministic and
survives the minimum, while scheduler and allocator noise — which only
ever adds time — is filtered out of both sides equally.
"""

import gc
import time

import pytest

from repro import AndroidManifest, Device
from repro.obs import OBS
from repro.obs.artifacts import bench_json_target, update_bench_json

pytestmark = pytest.mark.trace

APP = "com.obs.overhead"

# Generous CI bound over the ~5% nominal cost of the enabled-flag checks.
MAX_OVERHEAD_PCT = 35.0
OPS_PER_TRIAL = 40
ROUNDS = 120


@pytest.fixture
def api():
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=APP), object())
    api = device.spawn(APP)
    api.sys.makedirs("/storage/sdcard/bench")
    api.sys.write_file("/storage/sdcard/bench/file.bin", b"d" * 4096)
    return api


def test_disabled_tracer_read_write_overhead(api):
    assert not OBS.enabled
    sys = api.sys
    payload = b"w" * 4096

    def gated_loop():
        for _ in range(OPS_PER_TRIAL):
            sys.write_file("/storage/sdcard/bench/file.bin", payload)
            sys.read_file("/storage/sdcard/bench/file.bin")

    def ungated_loop():
        # The pre-instrumentation code path: implementation methods called
        # directly, no OBS gate on read/write (open's gate remains, which
        # only makes this baseline conservative).
        for _ in range(OPS_PER_TRIAL):
            sys._write_file_impl("/storage/sdcard/bench/file.bin", payload)
            sys._read_file_impl("/storage/sdcard/bench/file.bin")

    # Warm caches and any lazily-built state on both paths.
    gated_loop()
    ungated_loop()

    best_gated = best_ungated = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            start = time.perf_counter()
            ungated_loop()
            best_ungated = min(best_ungated, time.perf_counter() - start)
            start = time.perf_counter()
            gated_loop()
            best_gated = min(best_gated, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    overhead = (best_gated - best_ungated) / best_ungated * 100.0
    target = bench_json_target()
    if target:
        update_bench_json(
            target,
            "gate_overhead_obs",
            {
                "disabled_pct": round(overhead, 3),
                "budget_pct": MAX_OVERHEAD_PCT,
                "best_gated_s": best_gated,
                "best_ungated_s": best_ungated,
            },
        )
    assert overhead < MAX_OVERHEAD_PCT, (
        f"disabled-tracer fast path costs {overhead:.1f}% over the ungated "
        f"loop (budget {MAX_OVERHEAD_PCT}%; nominal target <5%)"
    )


def test_disabled_instrumentation_records_nothing(api):
    spans_before = len(OBS.spans())
    before = OBS.metrics.snapshot()
    api.sys.write_file("/storage/sdcard/bench/silent.bin", b"x")
    api.sys.read_file("/storage/sdcard/bench/silent.bin")
    assert len(OBS.spans()) == spans_before
    assert (OBS.metrics.snapshot() - before).nonzero().counters == {}


def test_profile_cycle_leaves_no_residue_on_the_disabled_path(api):
    """Arming and disarming ``OBS.profile`` must leave the disabled fast
    path exactly as it found it: no tracer listeners, no histogram state,
    nothing recorded by the instrumented loop afterwards. The profile
    switch is implemented as a span listener, so an empty listener list
    *is* the zero-cost guarantee — the hot path re-checks only
    ``OBS.enabled``, same as before this subsystem existed."""
    OBS.enable_profile()
    OBS.disable()
    OBS.reset()
    assert not OBS.enabled and not OBS.profile
    assert OBS.profiler.on_span not in OBS.tracer._listeners

    before = OBS.metrics.snapshot()
    for _ in range(OPS_PER_TRIAL):
        api.sys.write_file("/storage/sdcard/bench/file.bin", b"p" * 4096)
        api.sys.read_file("/storage/sdcard/bench/file.bin")
    assert len(OBS.spans()) == 0
    after = OBS.metrics.snapshot()
    assert not any(
        name.startswith("lat.") for name in (after - before).histograms
    ), "profile-off loop still fed lat.* histograms"


def test_profile_off_tracing_on_adds_no_listener_work(api):
    """With tracing enabled but ``profile`` off, span finish must not
    call into the profile recorder at all (listener never registered)."""
    with OBS.capture() as obs:
        seen_before = OBS.profiler.spans_seen
        api.sys.read_file("/storage/sdcard/bench/file.bin")
        assert obs.spans(), "positive control: tracing recorded nothing"
    assert OBS.profiler.spans_seen == seen_before
