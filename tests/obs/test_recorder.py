"""Flight recorder & causal timeline: gates, ring, triggers, replay.

The acceptance properties pinned here:

- **zero cost when disarmed** — a disarmed recorder holds no listener on
  any plane (tracer, fault plane, scheduler, audit log) and its
  ``record()`` is a pure no-op; arm/disarm round-trips leave every
  listener list exactly as found;
- **bounded ring** — overflow evicts oldest-first, counts into
  ``recorder.evicted``, and the counter surfaces as
  ``recorder_evicted_total`` in per-device Prometheus text and in the
  fleet merge;
- **capture() hygiene** — sampling knobs and the recorder arm-state
  survive a nested ``OBS.capture`` block (the satellite fix: an armed
  recorder left untouched by the block keeps its ring, one armed inside
  the block cannot leak out);
- **trigger matrix** — violation / delegate-timeout (audit tap),
  deadlock (scheduler trigger tap), crash-recovery (``Device.recover``),
  counterexample (fuzz drivers) and manual seals all produce dumps;
- **byte-identity** — a sealed counterexample replays to its anchor with
  the same events digest and the same schedule digest, for both the
  sequential driver and the interleaved race driver.
"""

import json

import pytest

from repro import AndroidManifest, Device
from repro.core.audit import AuditLog
from repro.faults import FAULTS, fail_nth
from repro.obs import OBS, ObsContext
from repro.obs.artifacts import load_blackbox, write_blackbox
from repro.obs.export import BASE_APP_UID
from repro.obs.fleet import FleetTelemetry
from repro.obs.recorder import (
    SEAL_TRIGGERS,
    BlackBox,
    Event,
    events_digest,
)
from repro.obs.timeline import (
    main as timeline_main,
    merge_events,
    parse_anchor,
    render_text,
    slice_around,
    timeline_json,
    to_perfetto,
)
from repro.sched import SCHED, DeadlockError, RWLock

pytestmark = pytest.mark.recorder

APP = "com.recorder.app"


# ----------------------------------------------------------------------
# Zero-cost-when-disarmed gate
# ----------------------------------------------------------------------


class TestZeroCostGate:
    def test_disarmed_record_is_a_pure_no_op(self):
        ctx = ObsContext(device_id="gate0")
        recorder = ctx.recorder
        assert not recorder.armed
        assert recorder.record("span", "vfs.write", "ok") is None
        assert recorder.events() == []
        assert recorder.seq == 0

    def test_arm_disarm_leaves_every_listener_list_as_found(self):
        ctx = ObsContext(device_id="gate1")
        audit = AuditLog()
        before = {
            "tracer": list(ctx.tracer._listeners),
            "faults": list(FAULTS._listeners),
            "decisions": list(SCHED._decision_listeners),
            "triggers": list(SCHED._trigger_listeners),
            "locks": list(SCHED._lock_listeners),
            "audit": list(audit._listeners),
        }
        recorder = ctx.recorder.arm(audit_log=audit)
        assert recorder._on_span in ctx.tracer._listeners
        assert recorder._on_fault in FAULTS._listeners
        assert recorder._on_decision in SCHED._decision_listeners
        assert recorder._on_trigger in SCHED._trigger_listeners
        assert recorder._on_lock in SCHED._lock_listeners
        assert recorder._on_audit in audit._listeners
        recorder.disarm()
        assert list(ctx.tracer._listeners) == before["tracer"]
        assert list(FAULTS._listeners) == before["faults"]
        assert list(SCHED._decision_listeners) == before["decisions"]
        assert list(SCHED._trigger_listeners) == before["triggers"]
        assert list(SCHED._lock_listeners) == before["locks"]
        assert list(audit._listeners) == before["audit"]

    def test_disarmed_device_workload_feeds_no_recorder_state(self):
        # A per-device context: the global OBS recorder legitimately
        # keeps its ring after a sealed postmortem elsewhere in the run.
        device = Device(maxoid_enabled=True, device_id="zerocost0")
        device.install(AndroidManifest(package=APP))
        api = device.spawn(APP)
        with device.obs.capture():
            api.write_internal("f.bin", b"x" * 64)
            api.sys.read_file(f"{api.internal_dir}/f.bin")
        recorder = device.obs.recorder
        assert recorder.events() == []
        assert recorder.seq == 0
        assert recorder.dumps == []

    def test_armed_recorder_sees_spans_and_audit_entries(self):
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=APP))
        api = device.spawn(APP)
        with device.obs.capture():
            device.arm_flight_recorder()
            try:
                api.write_internal("g.bin", b"y" * 32)
                device.audit_log.record("recovery", "note", step=1)
                planes = {event.plane for event in device.obs.recorder.events()}
                names = {event.name for event in device.obs.recorder.events()}
            finally:
                device.obs.recorder.disarm()
        assert "span" in planes
        assert "audit" in planes
        assert "vfs.write" in names


# ----------------------------------------------------------------------
# The bounded ring and its eviction counter
# ----------------------------------------------------------------------


class TestRingEviction:
    def test_overflow_evicts_oldest_and_counts_into_metrics(self):
        ctx = ObsContext(device_id="ring0")
        recorder = ctx.recorder.arm(capacity=4)
        try:
            for index in range(10):
                recorder.record("span", f"op{index}")
        finally:
            recorder.disarm()
        events = recorder.events()
        assert [event.seq for event in events] == [7, 8, 9, 10]
        assert recorder.evicted == 6
        assert ctx.metrics.snapshot().counters["recorder.evicted"] == 6
        assert "recorder_evicted_total 6" in ctx.metrics.to_prometheus_text()

    def test_eviction_counter_lands_in_fleet_merge(self):
        fleet = FleetTelemetry()
        for device_id, overflow in (("ringdev0", 6), ("ringdev1", 3)):
            ctx = ObsContext(device_id=device_id)
            recorder = ctx.recorder.arm(capacity=2)
            try:
                for _ in range(2 + overflow):
                    recorder.record("span", "op")
            finally:
                recorder.disarm()
            fleet.register(ctx)
        assert fleet.merged_metrics().counters["recorder.evicted"] == 9
        text = fleet.to_prometheus_text()
        assert 'recorder_evicted_total{device="ringdev0"} 6' in text
        assert 'recorder_evicted_total{device="ringdev1"} 3' in text

    def test_seal_metadata_records_eviction_count(self):
        ctx = ObsContext(device_id="ring1")
        recorder = ctx.recorder.arm(capacity=2)
        try:
            for _ in range(5):
                recorder.record("span", "op")
            box = recorder.seal()
        finally:
            recorder.disarm()
        assert box.metadata["evicted"] == 3


# ----------------------------------------------------------------------
# Event identity: counter-free lines, digests, dict round-trips
# ----------------------------------------------------------------------


class TestEventIdentity:
    def test_line_is_counter_free(self):
        event = Event(
            1, 0.0, "span", "vfs.write", "ok", attrs={"pid": 12345}, device_id="d0"
        )
        assert event.line() == "1 0 span vfs.write ok"
        assert "12345" not in event.line()

    def test_digest_prefix_matches_truncated_ring(self):
        one = Event(1, 0.0, "span", "a", "x")
        two = Event(2, 1.5, "fault", "vol.commit", "pass")
        assert events_digest((one, two)) != events_digest((one,))
        assert events_digest((one, two), upto=1) == events_digest((one,))

    def test_event_and_blackbox_dict_roundtrip(self):
        event = Event(3, 2.5, "lock", "acquire", "w:A by t1", attrs={"k": "v"})
        clone = Event.from_dict(event.to_dict())
        assert clone.line() == event.line()
        assert clone.attrs == event.attrs
        box = BlackBox(
            trigger="manual",
            device_id="d0",
            events=(event,),
            metadata={"note": "n"},
        )
        loaded = BlackBox.from_dict(box.to_dict())
        assert loaded.anchor_seq == 3
        assert loaded.events_digest() == box.events_digest()
        assert loaded.metadata["note"] == "n"


# ----------------------------------------------------------------------
# capture() hygiene: sampling knobs and recorder arm-state
# ----------------------------------------------------------------------


class TestCaptureRestore:
    def test_capture_restores_sampling_policy(self):
        try:
            OBS.set_sampling(rate=0.25, seed=7)
            with OBS.capture(sample_rate=0.1, sample_seed=3):
                assert OBS.sample_rate == 0.1
                assert OBS.sample_seed == 3
            assert OBS.sample_rate == 0.25
            assert OBS.sample_seed == 7
        finally:
            OBS.set_sampling(rate=1.0, seed=0)

    def test_untouched_block_keeps_outer_ring_intact(self):
        # The Device.recover(validate=True) regression: the validation
        # sweep runs inside a capture; re-arming on exit would wipe the
        # ring right before the crash-recovery seal.
        ctx = ObsContext(device_id="cap0")
        recorder = ctx.recorder.arm(capacity=64)
        try:
            recorder.record("span", "before-capture")
            with ctx.capture():
                pass
            assert recorder.armed
            assert [event.name for event in recorder.events()] == ["before-capture"]
        finally:
            recorder.disarm()

    def test_recorder_armed_inside_block_does_not_leak(self):
        ctx = ObsContext(device_id="cap1")
        with ctx.capture():
            ctx.recorder.arm(capacity=8)
            ctx.recorder.record("span", "inner")
        assert not ctx.recorder.armed
        assert ctx.tracer._listeners == []
        assert ctx.recorder._on_fault not in FAULTS._listeners

    def test_rearm_inside_block_restores_outer_config(self):
        ctx = ObsContext(device_id="cap2")
        ctx.recorder.arm(capacity=64)
        try:
            with ctx.capture():
                ctx.recorder.arm(capacity=8, autoseal=False)
            assert ctx.recorder.armed
            assert ctx.recorder.arm_config["capacity"] == 64
            assert ctx.recorder.arm_config["autoseal"] is True
        finally:
            ctx.recorder.disarm()


# ----------------------------------------------------------------------
# The trigger matrix
# ----------------------------------------------------------------------


class TestTriggers:
    def test_violation_audit_entry_autoseals(self):
        ctx = ObsContext(device_id="trig0")
        audit = AuditLog()
        recorder = ctx.recorder.arm(audit_log=audit)
        try:
            audit.record("violation", "S1 breached", rule="S1")
        finally:
            recorder.disarm()
        assert [box.trigger for box in recorder.dumps] == ["violation"]
        box = recorder.dumps[0]
        assert box.metadata["rule"] == "S1"
        assert box.events[-1].plane == "audit"
        assert box.events[-1].detail == "S1 breached"

    def test_timeout_audit_entry_seals_delegate_timeout(self):
        ctx = ObsContext(device_id="trig1")
        audit = AuditLog()
        recorder = ctx.recorder.arm(audit_log=audit)
        try:
            audit.record("timeout", "delegate hung")
        finally:
            recorder.disarm()
        assert [box.trigger for box in recorder.dumps] == ["delegate-timeout"]

    def test_other_audit_categories_do_not_seal(self):
        ctx = ObsContext(device_id="trig2")
        audit = AuditLog()
        recorder = ctx.recorder.arm(audit_log=audit)
        try:
            audit.record("recovery", "journal replayed")
        finally:
            recorder.disarm()
        assert recorder.dumps == []
        assert [event.name for event in recorder.events()] == ["recovery"]

    def test_autoseal_off_disables_trigger_dumps(self):
        ctx = ObsContext(device_id="trig3")
        audit = AuditLog()
        recorder = ctx.recorder.arm(audit_log=audit, autoseal=False)
        try:
            audit.record("violation", "S1 breached", rule="S1")
        finally:
            recorder.disarm()
        assert recorder.dumps == []
        assert recorder.events(), "taps must still record with autoseal off"

    def test_deadlock_trigger_seals_with_schedule_context(self):
        ctx = ObsContext(device_id="trig4")
        recorder = ctx.recorder.arm()
        lock_a, lock_b = RWLock("A"), RWLock("B")

        def t1() -> None:
            with lock_a.write():
                SCHED.yield_point("t1-holds-A")
                with lock_b.write():
                    pass

        def t2() -> None:
            with lock_b.write():
                SCHED.yield_point("t2-holds-B")
                with lock_a.write():
                    pass

        try:
            with pytest.raises(DeadlockError):
                SCHED.run(
                    [("t1", t1), ("t2", t2)], replay=["t1", "t2", "t1", "t2"]
                )
        finally:
            recorder.disarm()
        assert not SCHED.enabled
        assert [box.trigger for box in recorder.dumps] == ["deadlock"]
        box = recorder.dumps[0]
        planes = {event.plane for event in box.events}
        assert "lock" in planes and "sched" in planes
        assert any(event.name == "trigger.deadlock" for event in box.events)
        assert any(event.vclock > 0 for event in box.events)
        assert recorder.decisions, "decision tap never fired"
        assert box.metadata["schedule_digest"] == recorder.schedule_digest()
        assert "deadlock" in box.metadata["report"]

    def test_crash_recovery_seals_and_keeps_pre_crash_events(self):
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=APP))
        device.spawn(APP)
        recorder = device.arm_flight_recorder()
        try:
            recorder.record("span", "pre-crash-marker")
            device.recover(validate=True)
        finally:
            recorder.disarm()
        triggers = [box.trigger for box in recorder.dumps]
        assert triggers == ["crash-recovery"]
        box = recorder.dumps[0]
        assert "recovery" in box.metadata
        assert set(box.metadata["recovery"]) >= {
            "file_commits_replayed",
            "namespaces_rebuilt",
            "sweep_violations",
        }
        # The validation sweep runs inside a capture; the ring (and the
        # pre-crash event) must survive it.
        assert any(event.name == "pre-crash-marker" for event in box.events)

    def test_manual_seal_and_max_dumps_cap(self):
        ctx = ObsContext(device_id="trig5")
        recorder = ctx.recorder.arm()
        try:
            recorder.record("span", "op")
            recorder.max_dumps = 2
            first = recorder.seal()
            second = recorder.seal("manual", note="second")
            third = recorder.seal()
        finally:
            recorder.disarm()
        assert first.trigger == "manual" and first.trigger in SEAL_TRIGGERS
        assert second.metadata["note"] == "second"
        assert third is None
        assert recorder.dumps_suppressed == 1
        assert len(recorder.dumps) == 2

    def test_fault_consults_are_recorded_with_device_id(self):
        device = Device(maxoid_enabled=True)
        device.install(AndroidManifest(package=APP))
        api = device.spawn(APP)
        recorder = device.arm_flight_recorder()
        try:
            FAULTS.arm("vfs.write", fail_nth(99))
            api.write_internal("h.bin", b"z")
        finally:
            recorder.disarm()
            FAULTS.reset()
        faults = [event for event in recorder.events() if event.plane == "fault"]
        assert faults, "no fault-plane consult recorded"
        assert any(event.name == "vfs.write" for event in faults)
        assert all(
            event.attrs.get("device_id") == device.obs.device_id
            for event in faults
            if "device_id" in event.attrs
        )
        assert any("device_id" in event.attrs for event in faults)


# ----------------------------------------------------------------------
# Black-box dump files
# ----------------------------------------------------------------------


def _sealed_box(device_id: str = "dump0") -> BlackBox:
    ctx = ObsContext(device_id=device_id)
    recorder = ctx.recorder.arm()
    try:
        recorder.record("span", "vfs.write", "ok", path="/data/f")
        recorder.record("fault", "vol.commit", "pass")
        recorder.record("audit", "violation", "S1 breached")
        return recorder.seal("manual", note="roundtrip")
    finally:
        recorder.disarm()


class TestBlackBoxArtifacts:
    def test_write_load_roundtrip(self, tmp_path):
        box = _sealed_box()
        path = str(tmp_path / "dump.jsonl")
        assert write_blackbox(path, box) == path
        loaded = load_blackbox(path)
        assert loaded.trigger == "manual"
        assert loaded.device_id == "dump0"
        assert loaded.anchor_seq == box.anchor_seq
        assert loaded.events_digest() == box.events_digest()
        assert [event.line() for event in loaded.events] == [
            event.line() for event in box.events
        ]
        assert loaded.metadata["note"] == "roundtrip"

    def test_tampered_dump_fails_digest_check(self, tmp_path):
        path = str(tmp_path / "tampered.jsonl")
        write_blackbox(path, _sealed_box())
        with open(path, "r", encoding="utf-8") as source:
            lines = source.read().splitlines()
        event = json.loads(lines[1])
        event["detail"] = "doctored"
        lines[1] = json.dumps(event, sort_keys=True)
        with open(path, "w", encoding="utf-8") as sink:
            sink.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            load_blackbox(path)

    def test_non_blackbox_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-dump.jsonl")
        with open(path, "w", encoding="utf-8") as sink:
            sink.write(json.dumps({"kind": "timeline"}) + "\n")
        with pytest.raises(ValueError, match="not a black-box dump"):
            load_blackbox(path)


# ----------------------------------------------------------------------
# The causal timeline
# ----------------------------------------------------------------------


def _two_device_events():
    d0 = [
        Event(1, 1.0, "span", "a0", device_id="d0"),
        Event(2, 3.0, "span", "a1", device_id="d0"),
    ]
    d1 = [
        Event(1, 2.0, "fault", "b0", device_id="d1"),
        Event(2, 3.0, "sched", "b1", device_id="d1"),
    ]
    return d0, d1


class TestTimeline:
    def test_merge_orders_by_vclock_then_device_then_seq(self):
        d0, d1 = _two_device_events()
        merged = merge_events(d1, d0)
        assert [(e.device_id, e.seq) for e in merged] == [
            ("d0", 1),
            ("d1", 1),
            ("d0", 2),
            ("d1", 2),
        ]

    def test_slice_around_window_and_unknown_anchor(self):
        d0, d1 = _two_device_events()
        merged = merge_events(d0, d1)
        window = slice_around(merged, ("d1", 1), window=1)
        assert [(e.device_id, e.seq) for e in window] == [
            ("d0", 1),
            ("d1", 1),
            ("d0", 2),
        ]
        with pytest.raises(KeyError):
            slice_around(merged, ("d9", 99))

    def test_parse_anchor(self):
        assert parse_anchor("device0:42") == ("device0", 42)
        with pytest.raises(ValueError):
            parse_anchor("no-seq")
        with pytest.raises(ValueError):
            parse_anchor("dev:notanumber")

    def test_render_text_marks_the_anchor(self):
        d0, _d1 = _two_device_events()
        rendered = render_text(d0, anchor=("d0", 2))
        lines = rendered.splitlines()
        assert lines[0].startswith("  ")
        assert lines[1].startswith(">")

    def test_timeline_json_shape(self):
        d0, d1 = _two_device_events()
        doc = timeline_json(merge_events(d0, d1))
        assert doc["kind"] == "timeline"
        assert doc["devices"] == ["d0", "d1"]
        assert len(doc["events"]) == 4

    def test_perfetto_pids_per_device_and_threads_per_plane(self):
        d0, d1 = _two_device_events()
        trace = to_perfetto(merge_events(d0, d1))
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 4
        pids = {e["pid"] for e in instants}
        assert len(pids) == 2 and min(pids) == BASE_APP_UID
        process_names = {
            m["args"]["name"]
            for m in trace["traceEvents"]
            if m["ph"] == "M" and m["name"] == "process_name"
        }
        assert process_names == {"d0", "d1"}
        # vclock present: timestamps are virtual-clock microseconds.
        assert {e["ts"] for e in instants} == {1000.0, 2000.0, 3000.0}

    def test_perfetto_falls_back_to_seq_without_a_clock(self):
        events = [Event(1, 0.0, "span", "a"), Event(2, 0.0, "span", "b")]
        trace = to_perfetto(events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["ts"] for e in instants] == [1.0, 2.0]

    def test_cli_merges_dumps_and_slices_around_anchor(self, tmp_path, capsys):
        dump0 = str(tmp_path / "d0.jsonl")
        dump1 = str(tmp_path / "d1.jsonl")
        write_blackbox(dump0, _sealed_box("cli0"))
        write_blackbox(dump1, _sealed_box("cli1"))
        assert timeline_main([dump0, dump1]) == 0
        out = capsys.readouterr().out
        assert "6 event(s) from 2 device(s)" in out
        assert "trigger=manual" in out

        out_path = str(tmp_path / "timeline.json")
        assert (
            timeline_main(
                [dump0, dump1, "--format", "json", "--out", out_path]
            )
            == 0
        )
        with open(out_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["devices"] == ["cli0", "cli1"]

        assert (
            timeline_main(
                [dump0, dump1, "--around", "cli1:2", "--window", "1"]
            )
            == 0
        )
        sliced = capsys.readouterr().out
        assert "> " in sliced

        perfetto_path = str(tmp_path / "timeline.perfetto.json")
        assert (
            timeline_main(
                [dump0, dump1, "--format", "perfetto", "--out", perfetto_path]
            )
            == 0
        )
        with open(perfetto_path, "r", encoding="utf-8") as fh:
            assert "traceEvents" in json.load(fh)

    def test_cli_errors_exit_2(self, tmp_path, capsys):
        assert timeline_main([str(tmp_path / "missing.jsonl")]) == 2
        dump = str(tmp_path / "d.jsonl")
        write_blackbox(dump, _sealed_box("cli2"))
        assert timeline_main([dump, "--around", "nope:999"]) == 2
        assert "error:" in capsys.readouterr().err
