"""Trace exporters: Chrome/Perfetto JSON, folded stacks, speedscope.

The Chrome exporter is validated structurally (required keys, monotone
timestamps, proper nesting per pid/tid row) on both hand-built trees with
pinned times and a real traced delegate launch; the folded-stacks
exporter has an exact golden output.
"""

import json

import pytest

from repro import AndroidManifest, Device, Intent
from repro.obs import OBS
from repro.obs.export import (
    BASE_APP_UID,
    to_chrome_trace,
    to_folded_stacks,
    to_speedscope,
    write_chrome_trace,
    write_folded_stacks,
    write_speedscope,
)
from repro.obs.trace import Span, build_trees

pytestmark = pytest.mark.trace


def make_span(span_id, parent_id, name, start_ms, end_ms, **attrs):
    span = Span(
        tracer=None, trace_id=1, span_id=span_id, parent_id=parent_id,
        name=name, attrs=attrs,
    )
    span.start = start_ms / 1000.0
    span.end = end_ms / 1000.0
    return span


@pytest.fixture
def invocation_spans():
    """AM -> (zygote, vfs -> aufs) with pinned times and contexts."""
    return [
        make_span(4, 2, "aufs.copy_up", 5.0, 9.0),
        make_span(2, 1, "vfs.open", 4.0, 9.0),
        make_span(3, 1, "zygote.fork", 1.0, 3.0),
        make_span(1, None, "am.start_activity", 0.0, 10.0, ctx="b^a"),
    ]


def check_chrome_schema(document):
    """The structural contract Perfetto's JSON importer relies on."""
    assert isinstance(document["traceEvents"], list) and document["traceEvents"]
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    previous_ts = None
    for event in complete:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in event, f"event missing {key}: {event}"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if previous_ts is not None:
            assert event["ts"] >= previous_ts, "events not in ts order"
        previous_ts = event["ts"]
    # Same-row events must nest or be disjoint — never partially overlap.
    by_row = {}
    for event in complete:
        by_row.setdefault((event["pid"], event["tid"]), []).append(event)
    for row_events in by_row.values():
        for i, a in enumerate(row_events):
            for b in row_events[i + 1:]:
                a0, a1 = a["ts"], a["ts"] + a["dur"]
                b0, b1 = b["ts"], b["ts"] + b["dur"]
                nested = (a0 <= b0 and b1 <= a1) or (b0 <= a0 and a1 <= b1)
                disjoint = a1 <= b0 or b1 <= a0
                assert nested or disjoint, f"partial overlap: {a} vs {b}"
    return complete


def test_chrome_trace_shape_and_mapping(invocation_spans):
    document = to_chrome_trace(invocation_spans)
    complete = check_chrome_schema(document)
    names = [event["name"] for event in complete]
    assert names == [
        "am.start_activity", "zygote.fork", "vfs.open", "aufs.copy_up",
    ]  # ts order
    # pid = synthetic app uid per inherited ctx; tid = layer row.
    am = next(e for e in complete if e["name"] == "am.start_activity")
    aufs = next(e for e in complete if e["name"] == "aufs.copy_up")
    assert am["pid"] == BASE_APP_UID
    assert aufs["pid"] == am["pid"], "descendant did not inherit the ctx pid"
    assert aufs["tid"] != am["tid"], "layers must land on different rows"
    assert am["args"]["ctx"] == "b^a"
    assert am["args"]["status"] == "ok"
    assert am["dur"] == pytest.approx(10_000.0)  # µs
    # Metadata labels both the process and every thread row.
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
    thread_names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
    assert "b^a" in process_names
    assert {"am", "zygote", "vfs", "aufs"} <= thread_names


def test_chrome_trace_normalizes_ts_to_the_earliest_span(invocation_spans):
    document = to_chrome_trace(invocation_spans)
    complete = check_chrome_schema(document)
    assert min(event["ts"] for event in complete) == 0.0


def test_write_chrome_trace_round_trips_through_json(tmp_path, invocation_spans):
    path = tmp_path / "trace.json"
    written = write_chrome_trace(str(path), invocation_spans)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(written))
    check_chrome_schema(loaded)


def test_exporter_accepts_prebuilt_trees(invocation_spans):
    trees = build_trees(invocation_spans)
    assert to_chrome_trace(trees) == to_chrome_trace(invocation_spans)


# ----------------------------------------------------------------------
# Folded stacks (golden) and speedscope
# ----------------------------------------------------------------------

def test_folded_stacks_golden(invocation_spans):
    # Self times: am 3 ms, zygote 2 ms, vfs 1 ms, aufs 4 ms -> µs weights.
    assert to_folded_stacks(invocation_spans) == [
        "am.start_activity 3000",
        "am.start_activity;vfs.open 1000",
        "am.start_activity;vfs.open;aufs.copy_up 4000",
        "am.start_activity;zygote.fork 2000",
    ]


def test_folded_stacks_merge_identical_stacks():
    spans = [
        make_span(2, 1, "vfs.open", 0.0, 1.0),
        make_span(3, 1, "vfs.open", 2.0, 4.0),
        make_span(1, None, "am.start_activity", 0.0, 5.0),
    ]
    lines = to_folded_stacks(spans)
    assert "am.start_activity;vfs.open 3000" in lines


def test_write_folded_stacks_golden_file(tmp_path, invocation_spans):
    path = tmp_path / "stacks.folded"
    write_folded_stacks(str(path), invocation_spans)
    assert path.read_text().splitlines() == to_folded_stacks(invocation_spans)
    # Every line parses as "<stack> <positive int>".
    for line in path.read_text().splitlines():
        stack, _, weight = line.rpartition(" ")
        assert stack and int(weight) > 0


def test_speedscope_profile_is_balanced(invocation_spans):
    document = to_speedscope(invocation_spans)
    assert document["$schema"].startswith("https://www.speedscope.app")
    frames = document["shared"]["frames"]
    assert {f["name"] for f in frames} == {
        "am.start_activity", "zygote.fork", "vfs.open", "aufs.copy_up",
    }
    (profile,) = document["profiles"]
    assert profile["type"] == "evented"
    depth = 0
    last_at = 0.0
    opens = []
    for event in profile["events"]:
        assert event["at"] >= last_at - 1e-9, "events must be time-ordered"
        last_at = event["at"]
        if event["type"] == "O":
            opens.append(event["frame"])
            depth += 1
        else:
            assert opens.pop() == event["frame"], "unbalanced O/C pair"
            depth -= 1
        assert depth >= 0
    assert depth == 0 and not opens


def test_write_speedscope_round_trips(tmp_path, invocation_spans):
    path = tmp_path / "profile.speedscope.json"
    written = write_speedscope(str(path), invocation_spans, name="test")
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(written))
    assert loaded["name"] == "test"


# ----------------------------------------------------------------------
# A real traced delegate invocation exports cleanly
# ----------------------------------------------------------------------

APP = "com.export.app"
INITIATOR = "com.export.initiator"


class _Worker:
    def main(self, api, intent):
        api.write_external("out/x.bin", b"x" * 1024)
        return "done"


def test_real_delegate_invocation_exports(tmp_path):
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=APP), _Worker())
    device.install(AndroidManifest(package=INITIATOR), _Worker())
    with OBS.capture(ring_capacity=65536, profile=True) as obs:
        device.launch_as_delegate(APP, INITIATOR, Intent(Intent.ACTION_VIEW))
        trees = obs.trees()
    document = to_chrome_trace(trees)
    complete = check_chrome_schema(document)
    layers = {event["cat"] for event in complete}
    assert {"am", "zygote", "vfs"} <= layers
    # The delegate context owns a pid row labelled with B^A.
    metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
    assert any("^" in name for name in process_names), process_names
    stacks = to_folded_stacks(trees)
    assert stacks and all(int(line.rpartition(" ")[2]) > 0 for line in stacks)
