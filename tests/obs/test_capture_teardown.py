"""Capture teardown hygiene under mid-span failures.

Every fuzz example wraps a fresh world in ``OBS.capture()`` and attaches
a :class:`SecurityMonitor` listener inside the block. A step that raises
mid-span (a simulated crash, an injected fault, a plain bug) unwinds
through the capture's ``finally`` — which must strip listeners attached
inside the block and clear any provenance actor scopes the aborted op
left pushed, or example N's monitor keeps observing (and mis-attributing)
example N+1's spans.
"""

from __future__ import annotations

import pytest

from repro.obs import OBS
from repro.obs.monitor import SecurityMonitor


def _listener_count() -> int:
    return len(OBS.tracer._listeners)


def test_listener_attached_inside_capture_is_removed_on_clean_exit():
    baseline = _listener_count()
    seen = []
    with OBS.capture() as obs:
        obs.tracer.add_listener(seen.append)
        with obs.tracer.span("vfs.write", path="/tmp/x"):
            pass
        assert seen
    assert _listener_count() == baseline


def test_raise_mid_span_leaves_no_listener_or_actor_residue():
    baseline = _listener_count()
    with pytest.raises(RuntimeError):
        with OBS.capture(prov=True) as obs:
            obs.tracer.add_listener(lambda span: None)
            # An op aborted between push_actor and its balancing pop.
            obs.provenance.push_actor("com.attacker.interpreter", pid=4242)
            with obs.tracer.span("vfs.write", path="/tmp/x"):
                raise RuntimeError("fault injected mid-span")
    assert _listener_count() == baseline
    assert OBS.provenance.current_actor() == (None, None)


def test_preexisting_listener_survives_a_nested_capture():
    seen = []
    OBS.tracer.add_listener(seen.append)
    try:
        with pytest.raises(RuntimeError):
            with OBS.capture():
                raise RuntimeError("aborted example")
        assert seen.append in OBS.tracer._listeners
    finally:
        OBS.tracer.remove_listener(seen.append)


def test_aborted_monitor_does_not_observe_the_next_example():
    baseline = _listener_count()
    with pytest.raises(RuntimeError):
        with OBS.capture(prov=True) as obs:
            SecurityMonitor(
                obs.tracer, {"com.android.email"}, ledger=obs.provenance
            ).attach()
            raise RuntimeError("example died before detach")
    assert _listener_count() == baseline
    # The next capture starts from a clean tracer: only its own
    # listeners fire for its spans.
    with OBS.capture() as obs:
        assert _listener_count() == baseline
        with obs.tracer.span("vfs.read", path="/tmp/y"):
            pass
    assert _listener_count() == baseline


def test_consecutive_fuzz_style_captures_do_not_accumulate_listeners():
    baseline = _listener_count()
    for _ in range(3):
        with pytest.raises(ValueError):
            with OBS.capture(prov=True) as obs:
                SecurityMonitor(
                    obs.tracer, {"com.android.email"}, ledger=obs.provenance
                ).attach()
                obs.provenance.push_actor("ctx", pid=1)
                raise ValueError("every example aborts")
    assert _listener_count() == baseline
    assert OBS.provenance.current_actor() == (None, None)
