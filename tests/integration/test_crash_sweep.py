"""The crash sweep: kill the device at every fault point, recover, and
prove nothing tore and nothing leaked.

For each registered fault point the Table 1 delegate scenarios (plus an
explicit commit phase, so the commit-path points fire too) run with a
:func:`~repro.faults.crash_at` policy armed mid-way through that point's
hit sequence. The ``SimulatedCrash`` unwinds through every simulated
layer — it is a ``BaseException``, nothing in the stack may catch it —
and ``Device.recover()`` then has to bring the device back:

- no torn state: the commit WAL and every COW commit journal drain to
  empty, no copy-up staging file survives, no orphaned delegate lingers;
- no security violation: the post-recovery validation sweep re-checks
  S1/S2 over a traced probe workload and must come back clean;
- still alive: a fresh delegate write → initiator commit cycle works.

A planted-violation control corrupts a delegate's mount table by hand and
asserts the validation sweep actually flags it — and that recovery's
namespace rebuild repairs exactly that corruption.
"""

import pytest

from repro import Device
from repro.android.content.provider import ContentValues
from repro.android.storage import EXTDIR
from repro.android.uri import Uri
from repro.apps import install_standard_apps
from repro.core.cow import initiator_key
from repro.faults import FAULT_POINTS, FAULTS, SimulatedCrash, crash_at, fail_nth
from repro.kernel.aufs import AufsMount, Branch
from repro.kernel.vfs import ROOT_CRED

from .test_trace_invariants import (
    DROPBOX,
    EMAIL,
    VPLAYER,
    WRAPPER,
    run_table1_delegates,
)

pytestmark = [pytest.mark.faults, pytest.mark.trace]

WORDS = Uri.content("user_dictionary", "words")

#: A policy hit count no workload reaches: arms a point without ever
#: firing, so the counting pre-pass can measure hit totals.
NEVER = 10**9


def _loaded():
    """A fresh loaded device (module-scoped twin of ``loaded_device``)."""
    device = Device(maxoid_enabled=True)
    device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    device.network.publish("drive.google.com", "notes.txt", b"drive notes body")
    device.network.publish("example.com", "leaflet.pdf", b"%PDF public leaflet")
    device.apps = install_standard_apps(device)
    return device


def commit_phase(env):
    """Exercise both commit paths so their fault points fire: one
    volatile file commit and one COW batch commit."""
    delegate = env.spawn(VPLAYER, initiator=WRAPPER)
    delegate.write_external("sweep-note.txt", b"crash sweep payload")
    delegate.insert(WORDS, ContentValues({"word": "sweepword"}))
    wrapper = env.spawn(WRAPPER)
    # Appending to a public (lower-branch) file from the delegate's view
    # forces an aufs copy-up into Vol(WRAPPER).
    wrapper.write_external("vault-log.txt", b"seed")
    delegate.sys.append_file("/storage/sdcard/vault-log.txt", b"+delegate line")
    wrapper.volatile.commit("/storage/sdcard/tmp/sweep-note.txt")
    proxy = env.user_dictionary.proxy
    rows = proxy.volatile_rows("words", WRAPPER)
    pk = [c.lower() for c in rows.columns].index("_id")
    proxy.commit_volatile_batch("words", WRAPPER, [r[pk] for r in rows.rows])


def egress_phase(env):
    """Drive the egress services from a plain (non-delegate) app so the
    bt.send / sms.send / dm.enqueue fault points fire."""
    wrapper = env.spawn(WRAPPER)
    wrapper.bluetooth_send("headset-0", b"sweep bt payload")
    wrapper.send_sms("+15550100", "sweep sms body")
    wrapper.enqueue_download("http://example.com/leaflet.pdf", "leaflet")


def crash_workload(env):
    run_table1_delegates(env)
    commit_phase(env)
    egress_phase(env)


@pytest.fixture(scope="module")
def point_hits():
    """How often the workload consults each fault point, measured with
    never-firing policies armed everywhere."""
    FAULTS.reset()
    for point in FAULT_POINTS:
        FAULTS.arm(point, fail_nth(NEVER))
    try:
        crash_workload(_loaded())
        return {point: FAULTS.hits(point) for point in FAULT_POINTS}
    finally:
        FAULTS.reset()


def _assert_no_torn_state(env):
    """Every journal drained, every staging file gone, no orphans left."""
    assert len(env.commit_journal) == 0, "file-commit WAL still has entries"
    assert env.branches.purge_copyup_temps() == [], "copy-up temp survived"
    for provider in (env.user_dictionary, env.media, env.downloads, env.contacts):
        assert provider.proxy.recover() == (0, 0), (
            f"{provider.authority}: COW journal not drained"
        )
    assert env.am.reap_orphans() == [], "orphaned delegate survived recovery"


def _assert_still_functional(env):
    """A full delegate-write → initiator-commit cycle after recovery."""
    delegate = env.spawn(VPLAYER, initiator=WRAPPER)
    delegate.write_external("post-crash.txt", b"recovered")
    wrapper = env.spawn(WRAPPER)
    destination = wrapper.volatile.commit("/storage/sdcard/tmp/post-crash.txt")
    assert wrapper.sys.read_file(destination) == b"recovered"


@pytest.mark.parametrize("point", sorted(FAULT_POINTS))
def test_crash_at_every_point_recovers_clean(point, point_hits):
    hits = point_hits[point]
    assert hits > 0, f"the workload never reaches fault point {point!r}"
    # Crash mid-sequence, not at the trivially-first hit, wherever the
    # workload offers the room.
    nth = (hits + 1) // 2
    FAULTS.reset()
    env = _loaded()
    FAULTS.arm(point, crash_at(nth=nth))
    with pytest.raises(SimulatedCrash) as excinfo:
        crash_workload(env)
    assert excinfo.value.point == point

    report = env.recover()

    _assert_no_torn_state(env)
    assert report.sweep_spans_checked > 0, (
        "validation sweep saw no delegate spans — the S1/S2 check ran "
        "against nothing"
    )
    assert report.clean, "\n".join(report.sweep_violations)
    # The crash and every repair action are on the audit trail.
    assert any(e.category == "fault" for e in env.audit_log.events())
    _assert_still_functional(env)


def test_sweep_covers_at_least_eight_points_across_four_layers(point_hits):
    reached = {point for point, hits in point_hits.items() if hits > 0}
    layers = {point.split(".")[0] for point in reached}
    assert len(reached) >= 8, f"only {sorted(reached)} reached by the workload"
    assert len(layers) >= 4, f"only layers {sorted(layers)} covered"


# ----------------------------------------------------------------------
# Controls: the validation sweep must be able to fail, and recovery's
# namespace rebuild must repair exactly the corruption it flags.
# ----------------------------------------------------------------------

def _plant_foreign_mount(env, delegate):
    """Route the delegate's external view into a branch keyed to EMAIL —
    the mount-table corruption S2 exists to prevent."""
    evil_root = "/" + initiator_key(EMAIL)
    if not env.branches.deleg_fs.exists(evil_root, ROOT_CRED):
        env.branches.deleg_fs.mkdir(evil_root, ROOT_CRED, mode=0o777, parents=True)
    evil = AufsMount(
        [Branch(env.branches.deleg_fs, evil_root, writable=True, label="evil")],
        always_allow_read=True,
        label="evil",
    )
    delegate.process.namespace.mount(EXTDIR, evil)


def test_planted_mount_corruption_is_flagged_by_the_sweep(loaded_device):
    env = loaded_device
    delegate = env.spawn(VPLAYER, initiator=DROPBOX)
    _plant_foreign_mount(env, delegate)
    violations, spans_checked = env._validation_sweep()
    assert spans_checked > 0
    assert any(EMAIL in violation for violation in violations), (
        "the control violation went undetected — the crash sweep's clean "
        "verdicts prove nothing"
    )


def test_recovery_rebuilds_the_corrupted_namespace(loaded_device):
    env = loaded_device
    delegate = env.spawn(VPLAYER, initiator=DROPBOX)
    _plant_foreign_mount(env, delegate)
    report = env.recover()
    assert report.namespaces_rebuilt > 0
    assert report.clean, "\n".join(report.sweep_violations)
    # The delegate's external writes land back in its pair/initiator area,
    # not in the planted foreign branch.
    delegate.write_external("healed.txt", b"x")
    foreign = "/" + initiator_key(EMAIL) + "/healed.txt"
    assert not env.branches.deleg_fs.exists(foreign, ROOT_CRED)
