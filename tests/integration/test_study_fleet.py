"""The 77-app compatibility census (paper section 7.1: "Out of the 77
data processing apps we analyzed, only three ... cannot work when they
run as delegates, due to loss of network connection")."""

import pytest

from repro import AndroidManifest
from repro.apps.fleet import (
    CATEGORY_SIZES,
    NETWORK_DEPENDENT,
    build_study_fleet,
    install_fleet,
    run_fleet_as_delegates,
)
from repro.core.audit import find_marker_in_files

INITIATOR = "com.study.initiator"
MARKER = b"MARKER-fleet-secret"


class Nop:
    def main(self, api, intent):
        return None


class TestFleetConstruction:
    def test_77_apps_with_table1_category_sizes(self):
        fleet = build_study_fleet()
        assert len(fleet) == 77
        by_category = {}
        for member in fleet:
            by_category[member.category] = by_category.get(member.category, 0) + 1
        assert by_category == CATEGORY_SIZES

    def test_exactly_three_network_dependent(self):
        fleet = build_study_fleet()
        networked = {m.package for m in fleet if m.needs_network}
        assert networked == NETWORK_DEPENDENT


class TestCompatibilityCensus:
    def test_74_of_77_work_as_delegates(self, device):
        device.install(AndroidManifest(package=INITIATOR), Nop())
        owner = device.spawn(INITIATOR)
        path = owner.write_internal("docs/target.pdf", MARKER)
        worked, failed = run_fleet_as_delegates(device, INITIATOR, path)
        assert len(worked) == 74
        assert set(failed) == NETWORK_DEPENDENT

    def test_fleet_leaves_no_public_traces_under_maxoid(self, device):
        device.install(AndroidManifest(package=INITIATOR), Nop())
        owner = device.spawn(INITIATOR)
        path = owner.write_internal("docs/target.pdf", MARKER)
        run_fleet_as_delegates(device, INITIATOR, path)
        # After 74 apps processed the secret, a bystander still finds no
        # trace of it anywhere it can read.
        device.install(AndroidManifest(package="com.study.bystander"), Nop())
        bystander = device.spawn("com.study.bystander")
        assert find_marker_in_files(bystander, MARKER) == []
        assert not device.network.leaked_to_network(MARKER)

    def test_fleet_leaks_everywhere_on_stock(self, stock_device):
        stock_device.install(AndroidManifest(package=INITIATOR), Nop())
        owner = stock_device.spawn(INITIATOR)
        path = owner.write_external("docs/target.pdf", MARKER)  # must be public on stock
        worked, failed = run_fleet_as_delegates(stock_device, INITIATOR, path)
        # Everything "works" on stock (delegation doesn't exist, so even
        # the networked three run unconfined)...
        assert len(worked) == 77 and failed == []
        # ...and the secret is sprayed across public storage and the net.
        stock_device.install(AndroidManifest(package="com.study.bystander"), Nop())
        bystander = stock_device.spawn("com.study.bystander")
        assert find_marker_in_files(bystander, MARKER, roots=["/storage/sdcard"])
        assert stock_device.network.leaked_to_network(MARKER)

    def test_networked_apps_work_under_trusted_cloud_extension(self, device):
        """The extension lifts the paper's 3-app limitation: with their
        backends on the trusted cloud, all 77 work as delegates."""
        device.install(AndroidManifest(package=INITIATOR), Nop())
        owner = device.spawn(INITIATOR)
        path = owner.write_internal("docs/target.pdf", MARKER)
        cloud = device.network.enable_trusted_cloud()
        for package in NETWORK_DEPENDENT:
            cloud.register_backend(package, f"{package}.example")
        worked, failed = run_fleet_as_delegates(device, INITIATOR, path)
        assert len(worked) == 77 and failed == []
        # The documents went to domain-confined backends, not the open net.
        assert not device.network.leaked_to_network(MARKER)
        assert any(
            cloud.domain_received(f"{package}.example", INITIATOR, MARKER)
            for package in NETWORK_DEPENDENT
        )
