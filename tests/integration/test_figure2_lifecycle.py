"""Figure 2: normal and persistent private state evolving over time.

The figure's timeline: B runs normally (v0 -> v1 of Priv(B)), B^A forks
nPriv at v1 and accretes pPriv entries; B runs normally again and bumps
Priv(B) to v2; the next B^A discards the stale nPriv fork (re-fork from
v2) but keeps pPriv; B^C meanwhile gets its own isolated pPriv.
"""

import pytest

from repro import AndroidManifest

A = "com.initiator.one"
B = "com.viewer.app"
C = "com.initiator.two"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    for package in (A, B, C):
        device.install(AndroidManifest(package=package), Nop())
    return device


def npriv_note(api):
    return api.prefs.get("note")


def write_npriv_note(api, text):
    api.prefs.put("note", text)


def ppriv_list(api):
    db = api.ppriv.database("recent")
    if "recent" not in db.table_names():
        return []
    return [r[0] for r in db.query("SELECT name FROM recent ORDER BY id").rows]


def ppriv_add(api, name):
    db = api.ppriv.database("recent")
    if "recent" not in db.table_names():
        db.execute("CREATE TABLE recent (id INTEGER PRIMARY KEY, name TEXT)")
    db.execute("INSERT INTO recent (name) VALUES (?)", [name])


class TestFigure2Timeline:
    def test_full_timeline(self, env):
        # t0: B runs normally and saves a preference (Priv(B) = v1).
        b_normal = env.spawn(B)
        write_npriv_note(b_normal, "v1")
        # t1: B^A starts; nPriv forked from v1, and it adds private +
        # persistent state.
        ba = env.spawn(B, initiator=A)
        assert npriv_note(ba) == "v1"  # U1: initial state available
        write_npriv_note(ba, "delegate-edit")
        ppriv_add(ba, "attachment-1.pdf")
        # t2: B runs normally again; sees v1, not the delegate's edit (S4),
        # and bumps Priv(B) to v2.
        b_again = env.spawn(B)
        assert npriv_note(b_again) == "v1"
        write_npriv_note(b_again, "v2")
        # t3: B^A again: nPriv diverged so the old fork is discarded
        # (sees v2, not "delegate-edit"), but pPriv persists.
        ba2 = env.spawn(B, initiator=A)
        assert npriv_note(ba2) == "v2"
        assert ppriv_list(ba2) == ["attachment-1.pdf"]
        # t4: B^C is a different pair: fresh pPriv.
        bc = env.spawn(B, initiator=C)
        assert ppriv_list(bc) == []
        ppriv_add(bc, "c-document.pdf")
        # t5: pPriv(B^A) and pPriv(B^C) remain isolated.
        ba3 = env.spawn(B, initiator=A)
        assert ppriv_list(ba3) == ["attachment-1.pdf"]

    def test_npriv_kept_across_consecutive_delegate_runs(self, env):
        ba = env.spawn(B, initiator=A)
        write_npriv_note(ba, "delegate-state")
        # No normal run of B in between: the fork is kept.
        ba2 = env.spawn(B, initiator=A)
        assert npriv_note(ba2) == "delegate-state"

    def test_npriv_kept_across_other_initiators_runs(self, env):
        """Invoking B^C between two B^A runs does not discard nPriv(B^A)
        (only updates to Priv(B) itself do, section 3.2)."""
        ba = env.spawn(B, initiator=A)
        write_npriv_note(ba, "a-state")
        bc = env.spawn(B, initiator=C)
        write_npriv_note(bc, "c-state")
        ba2 = env.spawn(B, initiator=A)
        assert npriv_note(ba2) == "a-state"

    def test_ppriv_unavailable_when_running_normally(self, env):
        normal = env.spawn(B)
        assert not normal.ppriv.available
        delegate = env.spawn(B, initiator=A)
        assert delegate.ppriv.available

    def test_initiator_can_clear_ppriv(self, env):
        ba = env.spawn(B, initiator=A)
        ppriv_add(ba, "to-be-cleared.pdf")
        env.clear_delegate_priv(A)
        ba2 = env.spawn(B, initiator=A)
        assert ppriv_list(ba2) == []
