"""Adversarial invocation scenarios (paper section 3.4).

The subtle attacks the IPC rules must stop: stealing a delegate's results,
laundering data through siblings and broadcasts, nested delegation.
"""

import pytest

from repro.errors import IpcDenied, NestedDelegationError
from repro.android.intents import Intent, IntentFilter
from repro import AndroidManifest

A = "com.atk.victim"       # initiator with secrets
B = "com.atk.helper"       # delegate
C = "com.atk.attacker"     # malicious third app


class Recorder:
    def __init__(self):
        self.runs = []

    def main(self, api, intent):
        self.runs.append(str(api.process.context))
        return intent.extras.get("give_back")


@pytest.fixture
def env(device):
    device.apps_by_pkg = {}
    for package in (A, B, C):
        app = Recorder()
        device.apps_by_pkg[package] = app
        device.install(
            AndroidManifest(package=package, handles=[IntentFilter()]), app
        )
    return device


class TestInvocationStealing:
    def test_attacker_cannot_invoke_victims_delegate(self, env):
        """C invoking B yields B or B^C — never B^A (S1): the result of the
        invocation can't carry Priv(A)."""
        # A delegate of A exists with access to Priv(A).
        running = env.spawn(B, initiator=A)
        attacker = env.spawn(C)
        invocation = env.am.start_activity(
            attacker.process, Intent(Intent.ACTION_VIEW, component=B)
        )
        assert invocation.process.context.initiator is None
        # And the old B^A instance was killed, not reused.
        assert not running.process.alive

    def test_attacker_delegate_flag_confines_target_to_attacker(self, env):
        attacker = env.spawn(C)
        intent = Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
        invocation = env.am.start_activity(attacker.process, intent)
        # B runs on behalf of C — it can read Priv(C), not Priv(A).
        assert invocation.process.context.initiator == C


class TestLaundering:
    def test_delegate_chain_stays_in_domain(self, env):
        """B^A invoking C invoking (implicitly) anything: everyone ends up
        ^A — the taint follows the chain."""
        delegate = env.spawn(B, initiator=A)
        first = env.am.start_activity(
            delegate.process, Intent(Intent.ACTION_VIEW, component=C)
        )
        assert first.process.context.initiator == A
        second = env.am.start_activity(
            first.process, Intent(Intent.ACTION_VIEW, component=B)
        )
        assert second.process.context.initiator == A

    def test_nested_delegation_refused_even_deep_in_chain(self, env):
        delegate = env.spawn(B, initiator=A)
        hop = env.am.start_activity(
            delegate.process, Intent(Intent.ACTION_VIEW, component=C)
        ).process
        with pytest.raises(NestedDelegationError):
            env.am.start_activity(
                hop, Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
            )

    def test_direct_binder_to_outsider_denied(self, env):
        attacker_instance = env.spawn(C)
        endpoint = f"app:{attacker_instance.process.pid}"
        env.binder.register(endpoint, lambda txn: "stolen", owner=C)
        if env.ipc_guard is not None:
            env.ipc_guard.register_instance(endpoint, attacker_instance.process.context)
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(IpcDenied):
            env.binder.transact(delegate.process, endpoint, "exfil", b"Priv(A) data")

    def test_direct_binder_to_initiator_allowed(self, env):
        a_instance = env.spawn(A)
        endpoint = f"app:{a_instance.process.pid}"
        received = []
        env.binder.register(endpoint, lambda txn: received.append(txn.payload), owner=A)
        env.ipc_guard.register_instance(endpoint, a_instance.process.context)
        delegate = env.spawn(B, initiator=A)
        env.binder.transact(delegate.process, endpoint, "result", b"the answer")
        assert received == [b"the answer"]

    def test_broadcast_cannot_reach_attacker(self, env):
        heard = []
        attacker = env.spawn(C)
        env.am.register_receiver(
            attacker.process, IntentFilter(actions=["leak"]), lambda p, i: heard.append(i)
        )
        delegate = env.spawn(B, initiator=A)
        delivered = env.am.send_broadcast(
            delegate.process, Intent("leak", extras={"secret": "Priv(A)"})
        )
        assert delivered == 0
        assert heard == []


class TestStockAndroidContrast:
    def test_all_attacks_succeed_on_stock(self, stock_device):
        """On stock Android the same IPC is unrestricted."""
        apps = {}
        for package in (A, B, C):
            apps[package] = Recorder()
            stock_device.install(
                AndroidManifest(package=package, handles=[IntentFilter()]), apps[package]
            )
        helper = stock_device.spawn(B)
        endpoint = f"app:{helper.process.pid}"
        received = []
        stock_device.binder.register(endpoint, lambda txn: received.append(txn.payload), owner=B)
        attacker = stock_device.spawn(C)
        stock_device.binder.transact(attacker.process, endpoint, "x", b"anything")
        assert received == [b"anything"]
        heard = []
        stock_device.am.register_receiver(
            attacker.process, IntentFilter(actions=["leak"]), lambda p, i: heard.append(i)
        )
        assert stock_device.am.send_broadcast(helper.process, Intent("leak")) == 1
