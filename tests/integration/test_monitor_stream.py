"""The online monitor as a streaming checker: violations are flagged the
moment the offending span closes — not after the workload ends — and each
carries an ``explain()`` lineage back to the tainted Priv source.

The planted scenarios deliberately bypass Maxoid's confinement (spans are
hand-built, or the flow is driven on a stock device) so that the monitor
has something to catch; the assertion then covers the acceptance
criteria: online-equals-offline on the shared rule engine, mid-workload
flagging, non-empty lineage ending at the ``Priv(A)`` source, and
violations recorded into the audit log with their chains.
"""

import pytest

from repro import AndroidManifest, Device
from repro.core.audit import AuditLog
from repro.obs import OBS
from repro.obs.monitor import SecurityMonitor
from repro.obs.provenance import Label
from repro.obs.sweep import sweep_violations

pytestmark = [pytest.mark.trace, pytest.mark.prov]

A = "com.stream.initiator"
B = "com.stream.delegate"
X = "com.stream.victim"


class _Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def device():
    device = Device(maxoid_enabled=True)
    for pkg in (A, B, X):
        device.install(AndroidManifest(package=pkg), _Nop())
    return device


def _packages(device):
    return [p.manifest.package for p in device.packages.all_packages()]


def test_monitor_flags_planted_violation_before_workload_finishes(device):
    """Streaming, not post-hoc: the violation count is observable inside
    the workload, right after the offending span closes."""
    flagged_mid_workload = []
    with OBS.capture(prov=True) as obs:
        with SecurityMonitor(obs.tracer, _packages(device)) as monitor:
            with OBS.tracer.span(
                "vfs.read", ctx=f"{B}^{A}", path=f"/data/data/{X}/db/secrets.db"
            ):
                pass
            # Still inside the capture: later workload work would go here.
            flagged_mid_workload.append(len(monitor.violations))
            with OBS.tracer.span(
                "vfs.write", ctx=f"{B}^{A}", path="/storage/sdcard/later.bin"
            ):
                pass
    assert flagged_mid_workload == [1], "violation not flagged at span close"
    assert monitor.violations[0].rule == "S1"
    assert X in monitor.violations[0].message


def test_monitor_and_sweep_agree_on_planted_violations(device):
    """Shared-rule-engine equivalence over a mixed clean/dirty stream."""
    with OBS.capture(prov=True) as obs:
        monitor = SecurityMonitor(
            obs.tracer, _packages(device), ledger=obs.provenance
        )
        with monitor:
            # Clean delegate work.
            delegate = device.spawn(B, initiator=A)
            delegate.write_external("ok.bin", b"fine")
            # Planted S1: a delegate span touching a third party's Priv.
            with OBS.tracer.span(
                "vfs.read", ctx=f"{B}^{A}", path=f"/data/data/{X}/secrets.db"
            ):
                pass
            # Planted S3: a plain app reading a foreign Priv.
            with OBS.tracer.span(
                "vfs.read", ctx=B, path=f"/data/data/{X}/private.txt"
            ):
                pass
        trees = obs.trees()
    offline, _ = sweep_violations(trees, _packages(device), ledger=OBS.provenance)
    assert monitor.messages == [v.message for v in offline]
    assert {v.rule for v in monitor.violations} == {"S1", "S3"}


def test_taint_flow_s1_catches_launder_through_public_file(device):
    """The flow the path-based rules cannot see: a delegate reads its own
    initiator's Priv (legal), writes it to the shared view, and a *plain*
    process of another package publishes it. Only the taint form of S1
    catches the laundering, and its lineage ends at the Priv(A) source."""
    owner = device.spawn(A)
    owner.write_internal("docs/secret.txt", b"initiator private data")
    audit = AuditLog()
    with OBS.capture(prov=True) as obs:
        monitor = SecurityMonitor(
            obs.tracer, _packages(device), ledger=obs.provenance, audit_log=audit
        )
        with monitor:
            delegate = device.spawn(B, initiator=A)
            data = delegate.sys.read_file(f"/data/data/{A}/docs/secret.txt")
            delegate.write_external("leak.bin", data)
            # The initiator's own view: the delegate's file is volatile.
            initiator = device.spawn(A)
            staged = initiator.sys.read_file("/storage/sdcard/tmp/leak.bin")
            assert staged == data
            # A different package's plain process publishes the data.
            mule = device.spawn(X)
            with OBS.tracer.span(
                "vfs.write", ctx=X, path="/storage/sdcard/public-drop.bin"
            ):
                obs.provenance.read(
                    mule.process.pid, X, "/storage/sdcard/tmp/leak.bin"
                )
                obs.provenance.write(
                    mule.process.pid, X, "/storage/sdcard/public-drop.bin"
                )
        lineage = obs.provenance.explain("/storage/sdcard/public-drop.bin")
    s1 = [v for v in monitor.violations if v.rule == "S1"]
    assert s1, "taint-flow S1 did not fire"
    assert f"Priv({A})" in s1[0].message
    assert s1[0].lineage, "violation carries no lineage"
    assert s1[0].lineage[-1].startswith("source ")
    assert f"Priv({A})" in s1[0].lineage[-1]
    assert Label.priv(A) in lineage.taints
    # The audit log holds the same verdict with the same chain.
    recorded = audit.violations()
    assert len(recorded) == len(monitor.violations)
    assert recorded[0].details["rule"] == s1[0].rule
    assert recorded[0].details["lineage"] == s1[0].lineage


def test_recover_validation_runs_through_the_monitor(device):
    """Device.recover()'s probe workload streams through the monitor: the
    probe passes clean and the audit log records the sweep verdict."""
    device.spawn(B, initiator=A)
    device.spawn(X)
    report = device.recover()
    assert report.sweep_violations == []
    assert report.sweep_spans_checked > 0
    entries = [
        e for e in device.audit_log.events("recovery")
        if e.message == "validation sweep"
    ]
    assert entries and entries[-1].details["violations"] == 0
    assert device.audit_log.violations() == []
