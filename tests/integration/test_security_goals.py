"""End-to-end checks of the paper's security and usability goals
(section 3): S1-S4 and U1-U3, each tested through the full stack."""

import pytest

from repro.errors import KernelError, NetworkUnreachable, PermissionDenied, FileNotFound
from repro import AndroidManifest, Device
from repro.core.audit import figure1_flow_matrix, leaked_off_device

A = "com.secrets.holder"   # the initiator
B = "com.untrusted.tool"   # the delegate
X = "com.bystander.app"    # an unrelated app

SECRET = b"MARKER-initiator-secret-0xDEAD"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    for package in (A, B, X):
        device.install(AndroidManifest(package=package), Nop())
    device.network.add_host("attacker.example")
    return device


class TestS1InitiatorSecrecy:
    def test_delegate_reads_initiator_private_file(self, env):
        a = env.spawn(A)
        path = a.write_internal("vault/secret.txt", SECRET)
        delegate = env.spawn(B, initiator=A)
        assert delegate.sys.read_file(path) == SECRET

    def test_bystander_cannot_read_initiator_private_file(self, env):
        a = env.spawn(A)
        path = a.write_internal("vault/secret.txt", SECRET)
        x = env.spawn(X)
        with pytest.raises(KernelError):
            x.sys.read_file(path)

    def test_delegate_public_write_invisible_to_bystander(self, env):
        a = env.spawn(A)
        path = a.write_internal("vault/secret.txt", SECRET)
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("exfil/copy.txt", delegate.sys.read_file(path))
        x = env.spawn(X)
        assert not x.sys.exists("/storage/sdcard/exfil/copy.txt")

    def test_delegate_cannot_reach_network(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(NetworkUnreachable):
            delegate.connect("attacker.example")
        assert not leaked_off_device(env, SECRET)

    def test_after_confinement_b_cannot_observe_secret_residue(self, env):
        """When B later runs for itself, nothing derived from Priv(A)
        remains visible (S1's second clause)."""
        a = env.spawn(A)
        path = a.write_internal("vault/secret.txt", SECRET)
        delegate = env.spawn(B, initiator=A)
        delegate.write_internal("stash/copy.bin", delegate.sys.read_file(path))
        delegate.write_external("stash/copy2.bin", SECRET)
        normal_b = env.spawn(B)
        assert not normal_b.sys.exists("/data/data/" + B + "/stash/copy.bin")
        assert not normal_b.sys.exists("/storage/sdcard/stash/copy2.bin")


class TestS2InitiatorIntegrity:
    def test_delegate_cannot_overwrite_priv_a_in_place(self, env):
        a = env.spawn(A)
        path = a.write_internal("doc.txt", b"original")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file(path, b"tampered")
        assert a.sys.read_file(path) == b"original"

    def test_delegate_cannot_overwrite_public_in_place(self, env):
        a = env.spawn(A)
        a.write_external("shared.txt", b"public original")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file("/storage/sdcard/shared.txt", b"defaced")
        x = env.spawn(X)
        assert x.sys.read_file("/storage/sdcard/shared.txt") == b"public original"

    def test_commit_makes_update_default(self, env):
        a = env.spawn(A)
        a.write_external("doc.txt", b"v1")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file("/storage/sdcard/doc.txt", b"v2")
        a.volatile.commit("/storage/sdcard/tmp/doc.txt")
        assert env.spawn(X).sys.read_file("/storage/sdcard/doc.txt") == b"v2"

    def test_discard_reverts(self, env):
        a = env.spawn(A)
        a.write_external("doc.txt", b"v1")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file("/storage/sdcard/doc.txt", b"v2")
        env.clear_volatile(A)
        fresh_delegate = env.spawn(B, initiator=A)
        assert fresh_delegate.sys.read_file("/storage/sdcard/doc.txt") == b"v1"


class TestS3DelegateSecrecy:
    def test_initiator_cannot_read_delegate_private_state(self, env):
        normal_b = env.spawn(B)
        path = normal_b.write_internal("own/diary.txt", b"b's own secret")
        a = env.spawn(A)
        with pytest.raises(KernelError):
            a.sys.read_file(path)

    def test_initiator_cannot_read_delegate_writable_branch(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_internal("scratch.txt", b"delegate scratch")
        a = env.spawn(A)
        with pytest.raises(KernelError):
            a.sys.read_file("/data/data/" + B + "/scratch.txt")


class TestS4DelegateIntegrity:
    def test_priv_b_restored_after_delegation(self, env):
        normal_b = env.spawn(B)
        normal_b.prefs.put("setting", "user-choice")
        delegate = env.spawn(B, initiator=A)
        delegate.prefs.put("setting", "clobbered-by-delegate-run")
        fresh_b = env.spawn(B)
        assert fresh_b.prefs.get("setting") == "user-choice"

    def test_initiator_cannot_write_delegate_private_state(self, env):
        a = env.spawn(A)
        with pytest.raises(KernelError):
            a.sys.write_file("/data/data/" + B + "/planted.txt", b"evil")


class TestU1InitialStateAvailability:
    def test_delegate_sees_existing_public_state(self, env):
        env.spawn(X).write_external("music/song.mp3", b"public bytes")
        delegate = env.spawn(B, initiator=A)
        assert delegate.sys.read_file("/storage/sdcard/music/song.mp3") == b"public bytes"

    def test_delegate_sees_its_own_prior_private_state(self, env):
        normal_b = env.spawn(B)
        normal_b.prefs.put("preference", "keep-me")
        delegate = env.spawn(B, initiator=A)
        assert delegate.prefs.get("preference") == "keep-me"


class TestU2UpdateVisibility:
    def test_initiator_public_update_visible_to_running_delegate(self, env):
        delegate = env.spawn(B, initiator=A)
        env.spawn(X).write_external("news/today.txt", b"fresh update")
        assert delegate.sys.read_file("/storage/sdcard/news/today.txt") == b"fresh update"

    def test_sibling_delegates_share_vol(self, env):
        first = env.spawn(B, initiator=A)
        first.write_external("shared-vol.txt", b"from B^A")
        sibling = env.spawn(X, initiator=A)
        assert sibling.sys.read_file("/storage/sdcard/shared-vol.txt") == b"from B^A"

    def test_delegate_reads_its_own_writes(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("mine.txt", b"wrote this")
        assert delegate.sys.read_file("/storage/sdcard/mine.txt") == b"wrote this"

    def test_per_name_cow_freezes_only_touched_names(self, env):
        a = env.spawn(A)
        a.write_external("f1.txt", b"f1-v1")
        a.write_external("f2.txt", b"f2-v1")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file("/storage/sdcard/f1.txt", b"f1-delegate")
        a.sys.write_file("/storage/sdcard/f1.txt", b"f1-v2")
        a.sys.write_file("/storage/sdcard/f2.txt", b"f2-v2")
        # f1 is frozen at the volatile copy; f2 still tracks the public one.
        assert delegate.sys.read_file("/storage/sdcard/f1.txt") == b"f1-delegate"
        assert delegate.sys.read_file("/storage/sdcard/f2.txt") == b"f2-v2"


class TestU3Transparency:
    def test_delegate_uses_unmodified_paths(self, env):
        """The whole point: a delegate reads/writes the same paths an
        unconfined app would, with no Maxoid API calls."""
        delegate = env.spawn(B, initiator=A)
        delegate.sys.makedirs("/storage/sdcard/AppData")
        delegate.sys.write_file("/storage/sdcard/AppData/cache.bin", b"cache")
        assert delegate.sys.read_file("/storage/sdcard/AppData/cache.bin") == b"cache"
        delegate.prefs.put("k", "v")
        assert delegate.prefs.get("k") == "v"
        db = delegate.db("appdb")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t (v) VALUES ('row')")
        assert db.query("SELECT v FROM t").rows == [("row",)]


class TestFigure1Matrix:
    def test_all_flows_match_the_paper(self, env):
        checks = figure1_flow_matrix(env, A, B)
        failures = [c for c in checks if not c.ok]
        assert not failures, failures


class TestStockAndroidBaselineLeaks:
    """The attacks all succeed on stock Android — the motivation (2.2)."""

    def test_helper_leaks_to_public_storage_on_stock(self, stock_device):
        class Nop:
            def main(self, api, intent):
                return None

        for package in (A, B, X):
            stock_device.install(AndroidManifest(package=package), Nop())
        a = stock_device.spawn(A)
        a.write_external("attachment.pdf", SECRET)
        helper = stock_device.spawn(B)
        data = helper.sys.read_file("/storage/sdcard/attachment.pdf")
        helper.write_external("copies/leak.pdf", data)
        bystander = stock_device.spawn(X)
        assert bystander.sys.read_file("/storage/sdcard/copies/leak.pdf") == SECRET

    def test_helper_exfiltrates_over_network_on_stock(self, stock_device):
        class Nop:
            def main(self, api, intent):
                return None

        for package in (A, B):
            stock_device.install(AndroidManifest(package=package), Nop())
        stock_device.network.add_host("attacker.example")
        helper = stock_device.spawn(B)
        socket = helper.connect("attacker.example")
        socket.send(SECRET)
        assert leaked_off_device(stock_device, SECRET)
