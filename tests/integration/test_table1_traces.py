"""The Table 1 experiment as tests: each app category leaves exactly the
traces the paper catalogues on stock Android, and Maxoid confines all of
them when the app runs as a delegate."""

import pytest

from repro.android.intents import Intent
from repro.android.uri import Uri
from repro.core.audit import audit_observer, find_marker_in_files

EMAIL = "com.android.email"
ADOBE = "com.adobe.reader"
OFFICE = "cn.wps.moffice"
SCANNER = "com.google.zxing.client.android"
CAMSCANNER = "com.intsig.camscanner"
CAMERA = "com.magix.camera_mx"
VPLAYER = "me.abitno.vplayer.t"

MARKER = b"MARKER-T1-sensitive"


def prepare_document(env, name="doc.pdf"):
    """A sensitive document handed to data-processing apps via Email."""
    email = env.spawn(EMAIL)
    attachment_id = env.apps[EMAIL].receive_attachment(email, name, b"%PDF " + MARKER)
    return email, attachment_id


class TestDocumentViewers:
    """Table 1 row 1: XML recents (private) + SD copy (public)."""

    def test_stock_adobe_leaves_both_traces(self, loaded_stock_device):
        env = loaded_stock_device
        email, attachment_id = prepare_document(env)
        env.apps[EMAIL].view_attachment(email, attachment_id)
        viewer = env.spawn(ADOBE)
        # Private trace: recents list.
        assert viewer.prefs.get("recent_files") == ["doc.pdf"]
        # Public trace: a copy of the attachment on the SD card.
        hits = find_marker_in_files(env.spawn(SCANNER), MARKER, roots=["/storage/sdcard"])
        assert hits, "stock Android must leak the SD copy"

    def test_maxoid_confines_both_traces(self, loaded_device):
        env = loaded_device
        email, attachment_id = prepare_document(env)
        env.apps[EMAIL].view_attachment(email, attachment_id)
        viewer = env.spawn(ADOBE)
        assert viewer.prefs.get("recent_files") is None
        report = audit_observer(env.spawn(SCANNER), MARKER)
        assert report.clean

    def test_office_sdcard_database_confined(self, loaded_device):
        env = loaded_device
        wrapper = env.spawn("org.maxoid.wrapper")
        env.apps["org.maxoid.wrapper"].add_document(wrapper, "sheet.doc", MARKER)
        invocation = env.apps["org.maxoid.wrapper"].open_with_real_app(
            wrapper, "sheet.doc", component=OFFICE
        )
        # The office suite ran confined; its SD-card index DB and thumbnail
        # are invisible to other apps.
        observer = env.spawn(ADOBE)
        assert not observer.sys.exists("/storage/sdcard/office/index.db")
        assert not observer.sys.exists("/storage/sdcard/.thumbnails/sheet.doc.png")
        # But the initiator can inspect them in its volatile state.
        assert wrapper.volatile.read("/storage/sdcard/tmp/office/index.db")


class TestScanners:
    """Table 1 row 2: private recent-scans DB; CamScanner's SD traces."""

    def test_stock_scanner_keeps_history(self, loaded_stock_device):
        env = loaded_stock_device
        scanner_api = env.spawn(SCANNER)
        env.apps[SCANNER].main(
            scanner_api, Intent(Intent.ACTION_SCAN, extras={"qr_payload": "secret-url.example"})
        )
        fresh = env.spawn(SCANNER)
        assert env.apps[SCANNER].recent_scans(fresh) == ["secret-url.example"]

    def test_maxoid_delegate_scan_leaves_no_history(self, loaded_device):
        env = loaded_device
        invocation = env.launch_as_delegate(
            SCANNER,
            "com.android.browser",
            Intent(Intent.ACTION_SCAN, extras={"qr_payload": "secret-url.example"}),
        )
        assert invocation.result["text"] == "secret-url.example"
        fresh = env.spawn(SCANNER)
        assert env.apps[SCANNER].recent_scans(fresh) == []

    def test_camscanner_three_public_traces_confined(self, loaded_device):
        env = loaded_device
        email, attachment_id = prepare_document(env, "page.jpg")
        # CamScanner opens the attachment as Email's delegate.
        uri = env.apps[EMAIL].attachment_uri(attachment_id)
        email_api = env.spawn(EMAIL)
        delegate = env.spawn(CAMSCANNER, initiator=EMAIL)
        result = env.apps[CAMSCANNER].main(
            delegate,
            Intent(Intent.ACTION_SCAN, extras={"path": "/data/data/%s/attachments/%d/page.jpg" % (EMAIL, attachment_id)}),
        )
        observer = env.spawn(ADOBE)
        assert not observer.sys.exists(result["image"])
        assert not observer.sys.exists(result["thumbnail"])
        assert not observer.sys.exists("/storage/sdcard/CamScanner/scanner.log")
        # All three live in Vol(Email).
        vol = env.spawn(EMAIL).volatile.list_files()
        assert len([p for p in vol if "CamScanner" in p]) == 3


class TestPhotoApps:
    """Table 1 row 3: photo file + Media provider entry."""

    def test_stock_camera_publishes_photo_and_media_row(self, loaded_stock_device):
        env = loaded_stock_device
        camera = env.spawn(CAMERA)
        result = env.apps[CAMERA].main(
            camera, Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": MARKER})
        )
        observer = env.spawn(ADOBE)
        assert observer.sys.exists(result["path"])
        assert observer.query(Uri.content("media", "files")).rows

    def test_maxoid_delegate_photo_fully_volatile(self, loaded_device):
        env = loaded_device
        invocation = env.launch_as_delegate(
            CAMERA,
            "com.dropbox.android",
            Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": MARKER}),
        )
        observer = env.spawn(ADOBE)
        assert not observer.sys.exists(invocation.result["path"])
        assert observer.query(Uri.content("media", "files")).rows == []
        # Dropbox sees both the file (in tmp) and the media row (tmp URI).
        dbx = env.spawn("com.dropbox.android")
        assert dbx.query(Uri.content("media", "files").to_volatile()).rows
        tmp_path = "/storage/sdcard/tmp" + invocation.result["path"][len("/storage/sdcard"):]
        assert dbx.volatile.read(tmp_path) == MARKER


class TestMediaPlayers:
    """Table 1 row 4: playback history DB + thumbnail on SD."""

    def test_stock_vplayer_traces(self, loaded_stock_device):
        env = loaded_stock_device
        owner = env.spawn(VPLAYER)
        owner.write_external("Movies/home.mp4", MARKER)
        result = env.apps[VPLAYER].main(
            env.spawn(VPLAYER), Intent(Intent.ACTION_VIEW, extras={"path": "/storage/sdcard/Movies/home.mp4"})
        )
        fresh = env.spawn(VPLAYER)
        assert env.apps[VPLAYER].playback_history(fresh) == ["home.mp4"]
        assert env.spawn(ADOBE).sys.exists(result["thumbnail"])

    def test_maxoid_delegate_playback_confined(self, loaded_device):
        env = loaded_device
        wrapper = env.spawn("org.maxoid.wrapper")
        env.apps["org.maxoid.wrapper"].add_document(wrapper, "home.mp4", MARKER)
        delegate = env.spawn(VPLAYER, initiator="org.maxoid.wrapper")
        result = env.apps[VPLAYER].main(
            delegate,
            Intent(
                Intent.ACTION_VIEW,
                extras={"path": "/storage/sdcard/wrapper-vault/home.mp4"},
            ),
        )
        fresh = env.spawn(VPLAYER)
        assert env.apps[VPLAYER].playback_history(fresh) == []
        assert not env.spawn(ADOBE).sys.exists(result["thumbnail"])
