"""Scale tests: many initiators and delegates at once — the per-domain
isolation must hold pairwise across the whole device."""

import pytest

from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro import AndroidManifest

WORDS = Uri.content("user_dictionary", "words")


class Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def crowd(device):
    initiators = [f"com.scale.init{i}" for i in range(6)]
    helpers = [f"com.scale.helper{i}" for i in range(3)]
    for package in initiators + helpers:
        device.install(AndroidManifest(package=package), Nop())
    device.crowd = (initiators, helpers)
    return device


class TestManyDomains:
    def test_file_vol_isolated_pairwise(self, crowd):
        initiators, helpers = crowd.crowd
        for index, initiator in enumerate(initiators):
            helper = helpers[index % len(helpers)]
            delegate = crowd.spawn(helper, initiator=initiator)
            delegate.write_external(f"out/{index}.txt", f"vol-{index}".encode())
        # Each initiator sees exactly its own volatile file.
        for index, initiator in enumerate(initiators):
            api = crowd.spawn(initiator)
            files = api.volatile.list_files()
            assert files == [f"/storage/sdcard/tmp/out/{index}.txt"]
            assert api.volatile.read(files[0]) == f"vol-{index}".encode()

    def test_provider_vol_isolated_pairwise(self, crowd):
        initiators, helpers = crowd.crowd
        for index, initiator in enumerate(initiators):
            delegate = crowd.spawn(helpers[0], initiator=initiator)
            delegate.insert(WORDS, ContentValues({"word": f"word-{index}"}))
        for index, initiator in enumerate(initiators):
            delegate = crowd.spawn(helpers[1], initiator=initiator)
            words = [r[0] for r in delegate.query(WORDS, projection=["word"]).rows]
            assert words == [f"word-{index}"]
        # Public stays empty.
        assert crowd.spawn(helpers[0]).query(WORDS).rows == []

    def test_clearing_one_domain_leaves_others(self, crowd):
        initiators, helpers = crowd.crowd
        for index, initiator in enumerate(initiators):
            delegate = crowd.spawn(helpers[0], initiator=initiator)
            delegate.write_external("data.txt", str(index).encode())
        crowd.clear_volatile(initiators[0])
        assert crowd.spawn(initiators[0]).volatile.list_files() == []
        for initiator in initiators[1:]:
            assert crowd.spawn(initiator).volatile.list_files() == [
                "/storage/sdcard/tmp/data.txt"
            ]

    def test_ppriv_matrix_isolated(self, crowd):
        initiators, helpers = crowd.crowd
        # Every (helper, initiator) pair writes its own pPriv marker.
        for helper in helpers:
            for initiator in initiators:
                delegate = crowd.spawn(helper, initiator=initiator)
                delegate.ppriv.preferences().put("who", f"{helper}@{initiator}")
        for helper in helpers:
            for initiator in initiators:
                delegate = crowd.spawn(helper, initiator=initiator)
                assert delegate.ppriv.preferences().get("who") == f"{helper}@{initiator}"

    def test_many_delegates_share_one_domain(self, crowd):
        initiators, helpers = crowd.crowd
        initiator = initiators[0]
        for index, helper in enumerate(helpers):
            delegate = crowd.spawn(helper, initiator=initiator)
            delegate.write_external(f"shared/{index}.txt", b"x")
        # All three wrote into the same Vol; any sibling sees all of it.
        observer = crowd.spawn(helpers[0], initiator=initiator)
        assert observer.sys.listdir("/storage/sdcard/shared") == ["0.txt", "1.txt", "2.txt"]

    def test_process_table_scales(self, crowd):
        initiators, helpers = crowd.crowd
        spawned = []
        for initiator in initiators:
            for helper in helpers:
                spawned.append(crowd.spawn(helper, initiator=initiator))
        assert len(crowd.processes.instances_of_initiator(initiators[0])) == len(helpers)
        total_delegates = sum(
            1 for p in crowd.processes.alive() if p.context.is_delegate
        )
        assert total_delegates == len(initiators) * len(helpers)
