"""Security invariants re-checked from the trace stream.

The Table 1 scenarios run with tracing on, and the invariant sweep then
replays S1/S2 mechanically over the recorded spans: no span attributed to
a delegate context ``B^A`` may ever carry a virtual path under another
package's Priv, and no aufs open inside a delegate's tree may resolve its
writable branch into a root keyed to a different initiator. This is the
same property the integration suite asserts behaviourally, but checked
against what the instrumented layers actually *did*, operation by
operation — a tracing bug that misattributed work, or a mount-table bug
that routed a delegate's write into a foreign branch, fails here even if
the end-state assertions happen to pass.
"""

import pytest

from repro.android.intents import Intent
from repro.core.cow import initiator_key
from repro.obs import OBS, critical_path, latency_summary
from repro.obs.export import to_chrome_trace, to_folded_stacks
from repro.obs.monitor import SecurityMonitor
# The rule engine lives in repro.obs.sweep so that the offline sweep
# (Device.recover() included) and the online SecurityMonitor share one
# set of S1-S4 predicates.
from repro.obs.sweep import (
    DATA_PREFIX,
    parse_delegate_ctx,
    spans_with_inherited_ctx,
    sweep,
    sweep_violations,
)

pytestmark = pytest.mark.trace

EMAIL = "com.android.email"
ADOBE = "com.adobe.reader"
BROWSER = "com.android.browser"
SCANNER = "com.google.zxing.client.android"
CAMSCANNER = "com.intsig.camscanner"
CAMERA = "com.magix.camera_mx"
VPLAYER = "me.abitno.vplayer.t"
DROPBOX = "com.dropbox.android"
WRAPPER = "org.maxoid.wrapper"

MARKER = b"MARKER-TRACE-sensitive"


# ----------------------------------------------------------------------
# Scenarios (the Maxoid half of the Table 1 matrix, traced)
# ----------------------------------------------------------------------

def run_table1_delegates(env):
    """Drive every delegate scenario from the Table 1 suite."""
    # Row 1: document viewer as Email's delegate.
    email = env.spawn(EMAIL)
    attachment_id = env.apps[EMAIL].receive_attachment(
        email, "doc.pdf", b"%PDF " + MARKER
    )
    env.apps[EMAIL].view_attachment(email, attachment_id)
    # Row 2: barcode scanner as the Browser's delegate.
    env.launch_as_delegate(
        SCANNER,
        BROWSER,
        Intent(Intent.ACTION_SCAN, extras={"qr_payload": "secret-url.example"}),
    )
    # Row 2b: CamScanner as Email's delegate.
    delegate = env.spawn(CAMSCANNER, initiator=EMAIL)
    env.apps[CAMSCANNER].main(
        delegate,
        Intent(
            Intent.ACTION_SCAN,
            extras={
                "path": "/data/data/%s/attachments/%d/page.jpg" % (EMAIL, attachment_id)
            },
        ),
    )
    # Row 3: camera app as Dropbox's delegate.
    env.launch_as_delegate(
        CAMERA,
        DROPBOX,
        Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": MARKER}),
    )
    # Row 4: media player as the wrapper's delegate.
    wrapper = env.spawn(WRAPPER)
    env.apps[WRAPPER].add_document(wrapper, "home.mp4", MARKER)
    player = env.spawn(VPLAYER, initiator=WRAPPER)
    env.apps[VPLAYER].main(
        player,
        Intent(
            Intent.ACTION_VIEW,
            extras={"path": "/storage/sdcard/wrapper-vault/home.mp4"},
        ),
    )


@pytest.fixture
def table1_trace(loaded_device):
    """All Table 1 delegate scenarios executed under one capture, with
    the online monitor attached so every test can compare the streaming
    verdicts against the offline sweep's."""
    # CamScanner needs the attachment image staged before it is spawned
    # confined; receive_attachment handles that inside the capture.
    with OBS.capture(ring_capacity=65536, prov=True, profile=True) as obs:
        monitor = SecurityMonitor(
            obs.tracer, list(loaded_device.apps), ledger=obs.provenance
        )
        with monitor:
            run_table1_delegates(loaded_device)
        trees = obs.trees()
        latency = latency_summary(obs.metrics.snapshot())
        assert obs.tracer.ring.dropped == 0, "ring too small for the sweep"
    return loaded_device, trees, monitor, latency


# ----------------------------------------------------------------------
# Invariant tests
# ----------------------------------------------------------------------

def test_no_delegate_span_touches_a_foreign_priv(table1_trace):
    env, trees, _, _ = table1_trace
    violations, delegate_spans = sweep(trees, list(env.apps))
    assert delegate_spans > 50, (
        "positive control failed: the sweep saw almost no delegate-"
        "attributed spans, so the invariant was checked against nothing"
    )
    assert not violations, "\n".join(violations)


def test_online_monitor_matches_the_offline_sweep(table1_trace):
    """Shared-rule-engine equivalence: the streaming monitor must reach
    the same verdicts as the post-hoc sweep over the same spans."""
    env, trees, monitor, _ = table1_trace
    offline, offline_delegate_spans = sweep_violations(
        trees, list(env.apps), ledger=OBS.provenance
    )
    assert monitor.messages == [v.message for v in offline]
    assert monitor.delegate_spans == offline_delegate_spans
    assert monitor.delegate_spans > 50
    assert monitor.spans_seen > 0
    assert not monitor.violations


def test_sweep_covers_every_scenarios_delegate_context(table1_trace):
    """Each Table 1 delegate pair must appear in the trace, so a scenario
    silently running unconfined (ctx ``B`` instead of ``B^A``) fails."""
    env, trees, _, _ = table1_trace
    seen = {
        ctx
        for _, ctx in spans_with_inherited_ctx(trees)
        if ctx and "^" in ctx
    }
    expected = {
        f"{ADOBE}^{EMAIL}",
        f"{SCANNER}^{BROWSER}",
        f"{CAMSCANNER}^{EMAIL}",
        f"{CAMERA}^{DROPBOX}",
        f"{VPLAYER}^{WRAPPER}",
    }
    assert expected <= seen, f"missing delegate contexts: {expected - seen}"


def test_sweep_detects_a_planted_violation(loaded_device):
    """The sweep itself must be able to fail: a hand-built span tree in
    which a delegate touches another package's Priv is flagged."""
    with OBS.capture() as obs:
        with OBS.tracer.span(
            "vfs.read",
            ctx=f"{ADOBE}^{EMAIL}",
            path=f"/data/data/{DROPBOX}/databases/secrets.db",
        ):
            pass
        trees = obs.trees()
    violations, _ = sweep(trees, list(loaded_device.apps))
    assert len(violations) == 1 and DROPBOX in violations[0]


def test_delegate_writable_roots_stay_in_the_pair_or_initiator_area(table1_trace):
    """Every writable branch observed under a delegate context resolves to
    the ``B@A`` pair area or the initiator's volatile area — never to a
    bare foreign package root."""
    env, trees, _, _ = table1_trace
    checked = 0
    for node, ctx in spans_with_inherited_ctx(trees):
        pair = parse_delegate_ctx(ctx)
        root = node.span.attrs.get("writable_root")
        if pair is None or not root or node.span.status != "ok":
            continue
        checked += 1
        delegate, initiator = pair
        allowed = {
            initiator_key(delegate),
            initiator_key(initiator),
            f"{initiator_key(delegate)}@{initiator_key(initiator)}",
        }
        first = root.strip("/").split("/")[0]
        assert first in allowed or root.startswith(DATA_PREFIX), (
            f"{node.name} in ctx {ctx} has writable root {root}, outside "
            f"the pair/initiator areas {sorted(allowed)}"
        )
    assert checked > 10, "positive control: no writable-branch spans swept"


# ----------------------------------------------------------------------
# Profiling the same trace (the perf plane over the security sweep)
# ----------------------------------------------------------------------

def test_critical_path_attributes_delegate_invocations(table1_trace):
    """For every Table 1 delegate-invocation tree, the critical-path
    report must attribute at least 95% of the root span's wall time to
    layer self-times — unattributed time means an instrumentation gap."""
    _, trees, _, _ = table1_trace
    invocations = [tree for tree in trees if tree.span.name.startswith("am.")]
    assert invocations, "no delegate-invocation roots in the Table 1 trace"
    for tree in invocations:
        report = critical_path(tree)
        assert report.coverage >= 0.95, (
            f"{report.root}: layers attribute only "
            f"{report.coverage * 100.0:.1f}% of {report.total_ms:.3f} ms"
        )
        assert report.steps[0].name == tree.span.name
        assert report.hottest_layer in report.by_layer


def test_table1_trace_exports_to_perfetto_and_flamegraph(table1_trace):
    """The whole security-sweep trace must survive both exporters: the
    Chrome/Perfetto JSON keeps every delegate context on its own pid row,
    and the folded stacks stay parseable by flamegraph.pl."""
    env, trees, _, _ = table1_trace
    document = to_chrome_trace(trees)
    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(events) == sum(1 for tree in trees for _ in tree.walk())
    process_names = {
        e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    for ctx in (f"{ADOBE}^{EMAIL}", f"{VPLAYER}^{WRAPPER}"):
        assert ctx in process_names, f"delegate ctx {ctx} has no pid row"
    stacks = to_folded_stacks(trees)
    assert stacks
    for line in stacks:
        stack, _, weight = line.rpartition(" ")
        assert stack and int(weight) > 0


def test_table1_latency_histograms_cover_the_hot_layers(table1_trace):
    """``profile=True`` on the sweep capture must yield per-span-name
    latency summaries for the layers every scenario exercises."""
    _, _, _, latency = table1_trace
    assert {"vfs.open", "vfs.read", "zygote.fork"} <= set(latency)
    for name, row in latency.items():
        assert row["count"] >= 1, name
        assert 0.0 <= row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], name
