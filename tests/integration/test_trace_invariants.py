"""Security invariants re-checked from the trace stream.

The Table 1 scenarios run with tracing on, and the invariant sweep then
replays S1/S2 mechanically over the recorded spans: no span attributed to
a delegate context ``B^A`` may ever carry a virtual path under another
package's Priv, and no aufs open inside a delegate's tree may resolve its
writable branch into a root keyed to a different initiator. This is the
same property the integration suite asserts behaviourally, but checked
against what the instrumented layers actually *did*, operation by
operation — a tracing bug that misattributed work, or a mount-table bug
that routed a delegate's write into a foreign branch, fails here even if
the end-state assertions happen to pass.
"""

import pytest

from repro.android.intents import Intent
from repro.core.cow import initiator_key
from repro.obs import OBS

pytestmark = pytest.mark.trace

EMAIL = "com.android.email"
ADOBE = "com.adobe.reader"
BROWSER = "com.android.browser"
SCANNER = "com.google.zxing.client.android"
CAMSCANNER = "com.intsig.camscanner"
CAMERA = "com.magix.camera_mx"
VPLAYER = "me.abitno.vplayer.t"
DROPBOX = "com.dropbox.android"
WRAPPER = "org.maxoid.wrapper"

MARKER = b"MARKER-TRACE-sensitive"

DATA_PREFIX = "/data/data/"
PPRIV_SEGMENT = "ppriv"


# ----------------------------------------------------------------------
# Trace sweep machinery
# ----------------------------------------------------------------------

def spans_with_inherited_ctx(trees):
    """Yield ``(node, ctx)`` for every span, with ``ctx`` taken from the
    nearest ancestor-or-self span that recorded one (vfs and am spans tag
    themselves; aufs/cow/sql spans inherit the caller's)."""
    def walk(node, ctx):
        ctx = node.span.attrs.get("ctx", ctx)
        yield node, ctx
        for child in node.children:
            yield from walk(child, ctx)

    for tree in trees:
        yield from walk(tree, None)


def parse_delegate_ctx(ctx):
    """``"B^A"`` -> ``(B, A)``; ``None`` for non-delegate contexts."""
    if ctx and "^" in ctx:
        app, _, initiator = ctx.partition("^")
        return app, initiator
    return None


def priv_owner(path):
    """The package whose Priv a ``/data/data/...`` path falls under, with
    pPriv paths resolved to the package segment after ``ppriv``."""
    if not path.startswith(DATA_PREFIX):
        return None
    segments = [s for s in path[len(DATA_PREFIX):].split("/") if s]
    if not segments:
        return None
    if segments[0] == PPRIV_SEGMENT:
        return segments[1] if len(segments) > 1 else None
    return segments[0]


def foreign_keys(all_packages, delegate, initiator):
    """Sanitized branch-directory keys of every package that is neither
    the delegate nor its initiator."""
    return {
        initiator_key(pkg): pkg
        for pkg in all_packages
        if pkg not in (delegate, initiator)
    }


def writable_root_violations(node, ctx_pair, foreign):
    """A delegate's writable branch root must never be keyed to another
    package: neither a foreign per-app area (``/<key>/...``) nor a pair
    area with a foreign initiator (``.../<x>@<key>/...``)."""
    root = node.span.attrs.get("writable_root")
    if not root:
        return []
    hits = []
    for segment in root.strip("/").split("/"):
        parts = segment.split("@") if "@" in segment else [segment]
        for part in parts:
            if part in foreign:
                hits.append((root, foreign[part]))
    return hits


def sweep(trees, all_packages):
    """Replay the S1/S2 confinement check over every recorded span.

    Returns ``(violations, delegate_span_count)``; the count is the
    positive control that the sweep actually saw confined work.
    """
    violations = []
    delegate_spans = 0
    for node, ctx in spans_with_inherited_ctx(trees):
        pair = parse_delegate_ctx(ctx)
        if pair is None or node.span.status != "ok":
            continue
        delegate_spans += 1
        delegate, initiator = pair
        owner = priv_owner(node.span.attrs.get("path", ""))
        if owner is not None and owner not in (delegate, initiator):
            violations.append(
                f"{node.name} in ctx {ctx} touched Priv({owner}): "
                f"{node.span.attrs['path']}"
            )
        for root, pkg in writable_root_violations(
            node, pair, foreign_keys(all_packages, delegate, initiator)
        ):
            violations.append(
                f"{node.name} in ctx {ctx} writes into a branch keyed to "
                f"{pkg}: {root}"
            )
    return violations, delegate_spans


# ----------------------------------------------------------------------
# Scenarios (the Maxoid half of the Table 1 matrix, traced)
# ----------------------------------------------------------------------

def run_table1_delegates(env):
    """Drive every delegate scenario from the Table 1 suite."""
    # Row 1: document viewer as Email's delegate.
    email = env.spawn(EMAIL)
    attachment_id = env.apps[EMAIL].receive_attachment(
        email, "doc.pdf", b"%PDF " + MARKER
    )
    env.apps[EMAIL].view_attachment(email, attachment_id)
    # Row 2: barcode scanner as the Browser's delegate.
    env.launch_as_delegate(
        SCANNER,
        BROWSER,
        Intent(Intent.ACTION_SCAN, extras={"qr_payload": "secret-url.example"}),
    )
    # Row 2b: CamScanner as Email's delegate.
    delegate = env.spawn(CAMSCANNER, initiator=EMAIL)
    env.apps[CAMSCANNER].main(
        delegate,
        Intent(
            Intent.ACTION_SCAN,
            extras={
                "path": "/data/data/%s/attachments/%d/page.jpg" % (EMAIL, attachment_id)
            },
        ),
    )
    # Row 3: camera app as Dropbox's delegate.
    env.launch_as_delegate(
        CAMERA,
        DROPBOX,
        Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": MARKER}),
    )
    # Row 4: media player as the wrapper's delegate.
    wrapper = env.spawn(WRAPPER)
    env.apps[WRAPPER].add_document(wrapper, "home.mp4", MARKER)
    player = env.spawn(VPLAYER, initiator=WRAPPER)
    env.apps[VPLAYER].main(
        player,
        Intent(
            Intent.ACTION_VIEW,
            extras={"path": "/storage/sdcard/wrapper-vault/home.mp4"},
        ),
    )


@pytest.fixture
def table1_trace(loaded_device):
    """All Table 1 delegate scenarios executed under one capture."""
    # CamScanner needs the attachment image staged before it is spawned
    # confined; receive_attachment handles that inside the capture.
    with OBS.capture(ring_capacity=65536) as obs:
        run_table1_delegates(loaded_device)
        trees = obs.trees()
        assert obs.tracer.ring.dropped == 0, "ring too small for the sweep"
    return loaded_device, trees


# ----------------------------------------------------------------------
# Invariant tests
# ----------------------------------------------------------------------

def test_no_delegate_span_touches_a_foreign_priv(table1_trace):
    env, trees = table1_trace
    violations, delegate_spans = sweep(trees, list(env.apps))
    assert delegate_spans > 50, (
        "positive control failed: the sweep saw almost no delegate-"
        "attributed spans, so the invariant was checked against nothing"
    )
    assert not violations, "\n".join(violations)


def test_sweep_covers_every_scenarios_delegate_context(table1_trace):
    """Each Table 1 delegate pair must appear in the trace, so a scenario
    silently running unconfined (ctx ``B`` instead of ``B^A``) fails."""
    env, trees = table1_trace
    seen = {
        ctx
        for _, ctx in spans_with_inherited_ctx(trees)
        if ctx and "^" in ctx
    }
    expected = {
        f"{ADOBE}^{EMAIL}",
        f"{SCANNER}^{BROWSER}",
        f"{CAMSCANNER}^{EMAIL}",
        f"{CAMERA}^{DROPBOX}",
        f"{VPLAYER}^{WRAPPER}",
    }
    assert expected <= seen, f"missing delegate contexts: {expected - seen}"


def test_sweep_detects_a_planted_violation(loaded_device):
    """The sweep itself must be able to fail: a hand-built span tree in
    which a delegate touches another package's Priv is flagged."""
    with OBS.capture() as obs:
        with OBS.tracer.span(
            "vfs.read",
            ctx=f"{ADOBE}^{EMAIL}",
            path=f"/data/data/{DROPBOX}/databases/secrets.db",
        ):
            pass
        trees = obs.trees()
    violations, _ = sweep(trees, list(loaded_device.apps))
    assert len(violations) == 1 and DROPBOX in violations[0]


def test_delegate_writable_roots_stay_in_the_pair_or_initiator_area(table1_trace):
    """Every writable branch observed under a delegate context resolves to
    the ``B@A`` pair area or the initiator's volatile area — never to a
    bare foreign package root."""
    env, trees = table1_trace
    checked = 0
    for node, ctx in spans_with_inherited_ctx(trees):
        pair = parse_delegate_ctx(ctx)
        root = node.span.attrs.get("writable_root")
        if pair is None or not root or node.span.status != "ok":
            continue
        checked += 1
        delegate, initiator = pair
        allowed = {
            initiator_key(delegate),
            initiator_key(initiator),
            f"{initiator_key(delegate)}@{initiator_key(initiator)}",
        }
        first = root.strip("/").split("/")[0]
        assert first in allowed or root.startswith(DATA_PREFIX), (
            f"{node.name} in ctx {ctx} has writable root {root}, outside "
            f"the pair/initiator areas {sorted(allowed)}"
        )
    assert checked > 10, "positive control: no writable-branch spans swept"
