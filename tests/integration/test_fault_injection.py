"""Fault injection: dead processes, vanished state, read-only stores,
mid-session clears — the system must fail closed, never open.

Store and I/O failures are injected through the fault plane
(:mod:`repro.faults`) rather than by reaching into filesystem internals:
arming ``fail_with(ReadOnlyFilesystem)`` at ``aufs.copy_up`` *is* the
store going read-only under the union, as every instrumented call site
sees it."""

import pytest

from repro.errors import (
    FileNotFound,
    InjectedFault,
    NoSuchProcess,
    ProviderNotFound,
    ReadOnlyFilesystem,
)
from repro.android.content.downloads import STATUS_ERROR_NETWORK
from repro.android.content.provider import ContentValues
from repro.android.intents import Intent
from repro.android.uri import Uri
from repro.faults import FAULTS, fail_nth, fail_with
from repro.kernel.aufs import AufsMount, Branch
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED
from repro import AndroidManifest

pytestmark = pytest.mark.faults

A = "com.fault.initiator"
B = "com.fault.helper"


class Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def env(device):
    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


class TestDeadProcesses:
    def test_killed_delegate_cannot_touch_state(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.process.kill()
        with pytest.raises(NoSuchProcess):
            delegate.sys.read_file("/storage/sdcard")
        with pytest.raises(NoSuchProcess):
            delegate.write_external("x.txt", b"posthumous")

    def test_kill_on_conflict_invalidates_old_api(self, env):
        old = env.spawn(B)
        a = env.spawn(A)
        env.am.register_handler(B, lambda process, intent: "ok")
        env.am.start_activity(
            a.process, Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
        )
        with pytest.raises(NoSuchProcess):
            old.sys.exists("/")

    def test_clear_priv_kills_running_delegates(self, env):
        delegate = env.spawn(B, initiator=A)
        env.clear_delegate_priv(A)
        with pytest.raises(NoSuchProcess):
            delegate.write_internal("x", b"y")


class TestMidSessionClears:
    def test_delegate_writes_after_clear_vol_recreate_volatile(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("one.txt", b"1")
        env.clear_volatile(A)
        # The still-running delegate keeps working; its new writes land in
        # a fresh Vol(A).
        delegate.write_external("two.txt", b"2")
        a = env.spawn(A)
        assert a.volatile.list_files() == ["/storage/sdcard/tmp/two.txt"]

    def test_clear_vol_between_cow_and_read(self, env):
        a = env.spawn(A)
        a.write_external("doc.txt", b"public")
        delegate = env.spawn(B, initiator=A)
        delegate.sys.write_file("/storage/sdcard/doc.txt", b"volatile version")
        env.clear_volatile(A)
        # The COW copy is gone; the delegate falls back to the public file.
        assert delegate.sys.read_file("/storage/sdcard/doc.txt") == b"public"

    def test_commit_of_vanished_volatile_file_raises(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("gone.txt", b"x")
        a = env.spawn(A)
        env.clear_volatile(A)
        with pytest.raises(FileNotFound):
            a.volatile.commit("/storage/sdcard/tmp/gone.txt")


class TestReadOnlyStores:
    def test_copy_up_onto_read_only_fs_propagates_erofs(self):
        lower = Filesystem(label="lower")
        lower.write_file("/f", b"data", ROOT_CRED, mode=0o666)
        upper = Filesystem(label="upper")
        union = AufsMount(
            [Branch(upper, "/", writable=True), Branch(lower, "/", writable=False)],
            always_allow_read=True,
        )
        # The upper store goes read-only after mount: injected at the
        # copy-up fault point, before the union mutates anything.
        with FAULTS.scope():
            FAULTS.arm("aufs.copy_up", fail_with(ReadOnlyFilesystem))
            with pytest.raises(ReadOnlyFilesystem):
                union.append_file("/f", b"x", Credentials(uid=1001))
        # And the lower branch is untouched by the failed copy-up attempt.
        assert lower.read_file("/f", ROOT_CRED) == b"data"
        # The upper branch too: the fault fired before any mutation.
        assert not upper.exists("/f", ROOT_CRED)

    def test_transient_write_fault_does_not_corrupt_later_writes(self, env):
        api = env.spawn(A)
        with FAULTS.scope():
            FAULTS.arm("vfs.write", fail_nth(1))
            with pytest.raises(InjectedFault):
                api.write_external("flaky.txt", b"first")
            # The very next write through the same path succeeds.
            api.write_external("flaky.txt", b"second")
        assert api.read_external("flaky.txt") == b"second"


class TestBinderDeadRecipients:
    """Regression: a transaction to a dead recipient raises
    ``NoSuchProcess`` consistently — stale endpoint or no endpoint —
    instead of sometimes surfacing as ``ProviderNotFound``."""

    def _delegate_endpoint(self, env):
        a = env.spawn(A)
        env.am.register_handler(B, lambda process, intent: "ok")
        invocation = env.am.start_activity(
            a.process,
            Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE),
        )
        return a, invocation.process

    def test_transact_to_killed_recipient_raises_no_such_process(self, env):
        a, delegate_process = self._delegate_endpoint(env)
        target = f"app:{delegate_process.pid}"
        delegate_process.kill()
        # Stale endpoint still registered: fails closed, and consistently
        # so on retry (the first failure tears the stale endpoint down).
        for _ in range(2):
            with pytest.raises(NoSuchProcess):
                env.binder.transact(a.process, target, "ping", {})

    def test_transact_to_never_registered_app_endpoint(self, env):
        a = env.spawn(A)
        with pytest.raises(NoSuchProcess):
            env.binder.transact(a.process, "app:424242", "ping", {})

    def test_missing_service_endpoint_is_still_provider_not_found(self, env):
        a = env.spawn(A)
        with pytest.raises(ProviderNotFound):
            env.binder.transact(a.process, "no.such.service", "ping", {})

    def test_live_recipient_is_unaffected(self, env):
        a, delegate_process = self._delegate_endpoint(env)
        # The app endpoint's handler is a no-op; reaching it (no raise)
        # is the point.
        env.binder.transact(a.process, f"app:{delegate_process.pid}", "ping", {})


class TestProviderFaults:
    def test_download_of_unknown_host_fails_closed(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download("https://no.such.host/r", "r")
        env.run_downloads()
        assert env.download_manager.status(api.process, download_id) == STATUS_ERROR_NETWORK

    def test_open_file_for_failed_download_raises(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download("https://no.such.host/r", "r")
        env.run_downloads()
        with pytest.raises(FileNotFound):
            env.download_manager.open_downloaded_file(api.process, download_id)

    def test_run_downloads_is_idempotent(self, env):
        env.network.publish("h.example", "f", b"x")
        api = env.spawn(A)
        api.enqueue_download("https://h.example/f", "f")
        assert env.run_downloads() == 1
        assert env.run_downloads() == 0  # nothing pending twice

    def test_media_scan_of_missing_file_records_zero_size(self, env):
        api = env.spawn(A)
        uri = api.scan_media("/storage/sdcard/ghost.jpg")
        row = api.query(Uri.content("media", "files"), projection=["size"]).rows[0]
        assert row == (0,)

    def test_provider_insert_after_clear_starts_fresh_delta(self, env):
        words = Uri.content("user_dictionary", "words")
        delegate = env.spawn(B, initiator=A)
        delegate.insert(words, ContentValues({"word": "first"}))
        env.clear_volatile(A)
        delegate.insert(words, ContentValues({"word": "second"}))
        visible = [r[0] for r in delegate.query(words, projection=["word"]).rows]
        assert visible == ["second"]
