"""The paper's section 7.1 use cases, end to end:

Securing Dropbox, securing Email attachments, incognito Browser downloads,
the wrapper app's system-wide incognito mode, Google Drive, and
EBookDroid's persistent private state.
"""

import pytest

from repro.errors import KernelError, SecurityException
from repro.android.intents import Intent
from repro.android.uri import Uri
from repro.core.audit import leaked_off_device

DROPBOX = "com.dropbox.android"
GDRIVE = "com.google.android.apps.docs"
EMAIL = "com.android.email"
BROWSER = "com.android.browser"
ADOBE = "com.adobe.reader"
SCANNER = "com.google.zxing.client.android"
EBOOK = "org.ebookdroid"
WRAPPER = "org.maxoid.wrapper"


class TestSecuringDropbox(object):
    def test_files_private_on_external_storage(self, loaded_device):
        env = loaded_device
        dbx = env.spawn(DROPBOX)
        env.apps[DROPBOX].sync_down(dbx, ["report.pdf"])
        # Another app cannot see the synced file even though it lives on
        # the public SD card path-wise.
        other = env.spawn(ADOBE)
        assert not other.sys.exists("/storage/sdcard/Dropbox/report.pdf")

    def test_click_to_open_runs_delegate(self, loaded_device):
        env = loaded_device
        dbx = env.spawn(DROPBOX)
        env.apps[DROPBOX].sync_down(dbx, ["report.pdf"])
        invocation = env.apps[DROPBOX].open_file(dbx, "report.pdf")
        assert invocation.process.context.initiator == DROPBOX
        assert invocation.result["bytes"] == len(b"%PDF dropbox report")

    def test_delegate_edit_does_not_autosync(self, loaded_device):
        """The integrity story: a delegate's unintended change must not be
        synced to the server."""
        env = loaded_device
        dbx = env.spawn(DROPBOX)
        env.apps[DROPBOX].sync_down(dbx, ["report.pdf"])
        delegate = env.spawn(ADOBE, initiator=DROPBOX)
        delegate.sys.write_file("/storage/sdcard/Dropbox/report.pdf", b"mangled")
        assert env.apps[DROPBOX].auto_sync(dbx) == []

    def test_user_commits_desired_edit_via_tmp(self, loaded_device):
        env = loaded_device
        dbx = env.spawn(DROPBOX)
        env.apps[DROPBOX].sync_down(dbx, ["report.pdf"])
        delegate = env.spawn(ADOBE, initiator=DROPBOX)
        delegate.sys.write_file("/storage/sdcard/Dropbox/report.pdf", b"good edit")
        committed = env.apps[DROPBOX].upload_from_tmp(dbx, "report.pdf")
        assert committed == "/storage/sdcard/Dropbox/report.pdf"
        assert dbx.sys.read_file(committed) == b"good edit"
        assert env.network.leaked_to_network(b"good edit")  # the upload

    def test_camera_as_dropbox_delegate_via_launcher(self, loaded_device):
        env = loaded_device
        invocation = env.launch_as_delegate(
            "com.magix.camera_mx",
            DROPBOX,
            Intent(Intent.ACTION_IMAGE_CAPTURE, extras={"frame": b"\xff\xd8PHOTO"}),
        )
        photo_path = invocation.result["path"]
        dbx = env.spawn(DROPBOX)
        tmp_path = "/storage/sdcard/tmp" + photo_path[len("/storage/sdcard"):]
        assert dbx.volatile.read(tmp_path).endswith(b"PHOTO")
        # The photo is not public.
        assert not env.spawn(ADOBE).sys.exists(photo_path)


class TestSecuringEmail:
    def test_view_attachment_confines_viewer(self, loaded_device):
        env = loaded_device
        em = env.spawn(EMAIL)
        attachment_id = env.apps[EMAIL].receive_attachment(em, "contract.pdf", b"%PDF contract")
        invocation = env.apps[EMAIL].view_attachment(em, attachment_id)
        assert invocation.process.context.initiator == EMAIL
        # Adobe's copy of the attachment is in Vol(Email), not public.
        copy = invocation.result["sd_copy"]
        assert copy is not None
        assert not env.spawn(SCANNER).sys.exists(copy)
        assert em.volatile.read("/storage/sdcard/tmp" + copy[len("/storage/sdcard"):])

    def test_viewer_recents_do_not_survive_into_normal_runs(self, loaded_device):
        env = loaded_device
        em = env.spawn(EMAIL)
        attachment_id = env.apps[EMAIL].receive_attachment(em, "contract.pdf", b"%PDF c")
        env.apps[EMAIL].view_attachment(em, attachment_id)
        normal_viewer = env.spawn(ADOBE)
        assert normal_viewer.prefs.get("recent_files") is None

    def test_save_button_is_explicitly_public(self, loaded_device):
        env = loaded_device
        em = env.spawn(EMAIL)
        attachment_id = env.apps[EMAIL].receive_attachment(em, "flyer.pdf", b"%PDF flyer")
        path = env.apps[EMAIL].save_attachment(em, attachment_id)
        assert env.spawn(SCANNER).sys.read_file(path) == b"%PDF flyer"

    def test_attachment_secret_never_leaves_device(self, loaded_device):
        env = loaded_device
        em = env.spawn(EMAIL)
        secret = b"MARKER-attachment-secret"
        attachment_id = env.apps[EMAIL].receive_attachment(em, "s.pdf", secret)
        env.apps[EMAIL].view_attachment(em, attachment_id)
        assert not leaked_off_device(env, secret)


class TestIncognitoBrowser:
    def _incognito_download(self, env):
        browser = env.spawn(BROWSER)
        download_id = env.apps[BROWSER].download(
            browser, "https://example.com/leaflet.pdf", "leaflet.pdf", incognito=True
        )
        env.run_downloads()
        return browser, download_id

    def test_incognito_download_is_volatile(self, loaded_device):
        env = loaded_device
        browser, download_id = self._incognito_download(env)
        assert env.download_manager.succeeded(browser.process, download_id, volatile=True)
        # Publicly invisible: no file, no Downloads entry.
        other = env.spawn(SCANNER)
        assert not other.sys.exists("/storage/sdcard/Download/leaflet.pdf")
        assert other.query(Uri.content("downloads", "all_downloads")).rows == []

    def test_notification_opens_viewer_as_delegate(self, loaded_device):
        env = loaded_device
        browser, _ = self._incognito_download(env)
        note = env.downloads.notifications[-1]
        assert note.is_volatile
        invocation = env.apps[BROWSER].open_download(browser, note)
        assert invocation.process.context.initiator == BROWSER
        assert invocation.result["bytes"] == len(b"%PDF public leaflet")

    def test_clear_vol_erases_all_traces(self, loaded_device):
        env = loaded_device
        browser, _ = self._incognito_download(env)
        note = env.downloads.notifications[-1]
        env.apps[BROWSER].open_download(browser, note)
        env.launcher.clear_vol(BROWSER)
        env.launcher.clear_priv(BROWSER)
        fresh_delegate = env.spawn(ADOBE, initiator=BROWSER)
        assert not fresh_delegate.sys.exists("/storage/sdcard/Download/leaflet.pdf")
        assert fresh_delegate.query(Uri.content("downloads", "all_downloads")).rows == []
        assert env.spawn(ADOBE).prefs.get("recent_files") is None

    def test_normal_download_is_public(self, loaded_device):
        env = loaded_device
        browser = env.spawn(BROWSER)
        env.apps[BROWSER].download(
            browser, "https://example.com/leaflet.pdf", "leaflet.pdf", incognito=False
        )
        env.run_downloads()
        assert env.spawn(SCANNER).sys.exists("/storage/sdcard/Download/leaflet.pdf")

    def test_qr_scanner_as_browser_delegate_leaves_no_history(self, loaded_device):
        env = loaded_device
        scan = env.launch_as_delegate(
            SCANNER,
            BROWSER,
            Intent(Intent.ACTION_SCAN, extras={"qr_payload": "example.com/leaflet.pdf"}),
        )
        assert scan.result["text"] == "example.com/leaflet.pdf"
        env.launcher.clear_priv(BROWSER)
        normal_scanner = env.spawn(SCANNER)
        assert env.apps[SCANNER].recent_scans(normal_scanner) == []


class TestGoogleDrive:
    def test_cache_is_unlistable_but_file_openable(self, loaded_device):
        env = loaded_device
        drive = env.spawn(GDRIVE)
        cached = env.apps[GDRIVE].fetch(drive, "notes.txt")
        viewer = env.spawn(ADOBE)
        # The viewer can open the disclosed file...
        assert viewer.sys.read_file(cached) == b"drive notes body"
        # ...but cannot enumerate the cache directory.
        with pytest.raises(KernelError):
            viewer.sys.listdir("/data/data/" + GDRIVE + "/cache/filecache")

    def test_open_runs_viewer_as_delegate(self, loaded_device):
        env = loaded_device
        drive = env.spawn(GDRIVE)
        env.apps[GDRIVE].fetch(drive, "notes.txt")
        invocation = env.apps[GDRIVE].open_file(drive, "notes.txt")
        assert invocation.process.context.initiator == GDRIVE


class TestWrapperApp:
    def test_system_wide_incognito(self, loaded_device):
        env = loaded_device
        wrapper = env.spawn(WRAPPER)
        env.apps[WRAPPER].add_document(wrapper, "taxes.pdf", b"%PDF taxes MARKER-taxes")
        invocation = env.apps[WRAPPER].open_with_real_app(wrapper, "taxes.pdf")
        assert invocation.process.context.initiator == WRAPPER
        cleared = env.apps[WRAPPER].end_session(wrapper)
        assert cleared >= 1
        # No app can see any trace of the session.
        viewer = env.spawn(ADOBE)
        assert viewer.prefs.get("recent_files") is None
        assert not leaked_off_device(env, b"MARKER-taxes")

    def test_every_wrapper_invocation_is_private(self, loaded_device):
        env = loaded_device
        wrapper = env.spawn(WRAPPER)
        env.apps[WRAPPER].add_document(wrapper, "x.pdf", b"%PDF x")
        invocation = env.apps[WRAPPER].open_with_real_app(wrapper, "x.pdf", Intent.ACTION_VIEW)
        assert invocation.process.context.is_delegate


class TestEBookDroidPersistentState:
    def test_ppriv_survives_npriv_refork(self, loaded_device):
        env = loaded_device
        ebook = env.apps[EBOOK]
        email = env.spawn(EMAIL)
        env.apps[EMAIL].receive_attachment(email, "book.pdf", b"%PDF book")
        # First delegate run records the book in pPriv.
        first = env.spawn(EBOOK, initiator=EMAIL)
        ebook.main(
            first,
            Intent(Intent.ACTION_VIEW, extras={"path": "/data/data/%s/attachments/1/book.pdf" % EMAIL}),
        )
        # The user updates Priv(ebook) between invocations -> nPriv reforks.
        normal = env.spawn(EBOOK)
        normal.prefs.put("theme", "sepia")
        second = env.spawn(EBOOK, initiator=EMAIL)
        assert "book.pdf" in ebook.recent_list(second)

    def test_ppriv_isolated_per_initiator(self, loaded_device):
        env = loaded_device
        ebook = env.apps[EBOOK]
        email = env.spawn(EMAIL)
        env.apps[EMAIL].receive_attachment(email, "book.pdf", b"%PDF book")
        for_email = env.spawn(EBOOK, initiator=EMAIL)
        ebook.main(
            for_email,
            Intent(Intent.ACTION_VIEW, extras={"path": "/data/data/%s/attachments/1/book.pdf" % EMAIL}),
        )
        for_browser = env.spawn(EBOOK, initiator=BROWSER)
        assert "book.pdf" not in ebook.recent_list(for_browser)

    def test_delegate_entries_invisible_when_running_normally(self, loaded_device):
        env = loaded_device
        ebook = env.apps[EBOOK]
        email = env.spawn(EMAIL)
        env.apps[EMAIL].receive_attachment(email, "private.pdf", b"%PDF p")
        delegate = env.spawn(EBOOK, initiator=EMAIL)
        ebook.main(
            delegate,
            Intent(Intent.ACTION_VIEW, extras={"path": "/data/data/%s/attachments/1/private.pdf" % EMAIL}),
        )
        normal = env.spawn(EBOOK)
        assert "private.pdf" not in ebook.recent_list(normal)
