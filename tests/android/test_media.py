"""Media provider tests: view hierarchy, scanner, thumbnail states
(paper section 5.3)."""

import pytest

from repro.errors import SecurityException
from repro.android.content.media import FILES_URI, MEDIA_TYPE_IMAGE
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro import AndroidManifest

A = "com.app.gallery"
B = "com.app.editor"

IMAGES = Uri.content("media", "images")
AUDIO = Uri.content("media", "audio")
VIDEO = Uri.content("media", "video")


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


class TestBasicStore:
    def test_insert_and_query_files(self, env):
        api = env.spawn(A)
        api.insert(FILES_URI, ContentValues({"_data": "/storage/sdcard/x.jpg", "media_type": 1, "title": "x"}))
        rows = api.query(FILES_URI, projection=["title"]).rows
        assert rows == [("x",)]

    def test_images_view_selects_by_type(self, env):
        api = env.spawn(A)
        api.insert(FILES_URI, ContentValues({"_data": "/a.jpg", "media_type": 1, "title": "pic"}))
        api.insert(FILES_URI, ContentValues({"_data": "/a.mp4", "media_type": 3, "title": "vid"}))
        assert [r[0] for r in api.query(IMAGES, projection=["title"]).rows] == ["pic"]
        assert [r[0] for r in api.query(VIDEO, projection=["title"]).rows] == ["vid"]

    def test_views_are_read_only(self, env):
        api = env.spawn(A)
        with pytest.raises(SecurityException):
            api.insert(IMAGES, ContentValues({"title": "nope"}))

    def test_audio_joins_artists_albums(self, env):
        api = env.spawn(A)
        artists = Uri.content("media", "artists")
        albums = Uri.content("media", "albums")
        api.insert(artists, ContentValues({"artist": "The Kernels"}))
        api.insert(albums, ContentValues({"album": "Mount Points"}))
        api.insert(
            FILES_URI,
            ContentValues(
                {"_data": "/s.mp3", "media_type": 2, "title": "Unionfs Blues",
                 "artist_id": 1, "album_id": 1}
            ),
        )
        rows = api.query(AUDIO, projection=["title", "artist", "album"]).rows
        assert rows == [("Unionfs Blues", "The Kernels", "Mount Points")]


class TestDelegateViews:
    def test_delegate_insert_volatile_in_files_and_views(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.insert(FILES_URI, ContentValues({"_data": "/d.jpg", "media_type": 1, "title": "secret-pic"}))
        assert [r[0] for r in delegate.query(IMAGES, projection=["title"]).rows] == ["secret-pic"]
        # Public views see nothing.
        public = env.spawn(B)
        assert public.query(IMAGES).rows == []
        assert public.query(FILES_URI).rows == []

    def test_delegate_sees_merged_images_view(self, env):
        env.spawn(A).insert(FILES_URI, ContentValues({"_data": "/pub.jpg", "media_type": 1, "title": "pub"}))
        delegate = env.spawn(B, initiator=A)
        delegate.insert(FILES_URI, ContentValues({"_data": "/vol.jpg", "media_type": 1, "title": "vol"}))
        titles = sorted(r[0] for r in delegate.query(IMAGES, projection=["title"]).rows)
        assert titles == ["pub", "vol"]

    def test_delegate_audio_view_over_cow_hierarchy(self, env):
        a = env.spawn(A)
        a.insert(Uri.content("media", "artists"), ContentValues({"artist": "Public Artist"}))
        a.insert(Uri.content("media", "albums"), ContentValues({"album": "Public Album"}))
        delegate = env.spawn(B, initiator=A)
        delegate.insert(
            FILES_URI,
            ContentValues({"_data": "/v.mp3", "media_type": 2, "title": "Volatile Song",
                           "artist_id": 1, "album_id": 1}),
        )
        rows = delegate.query(AUDIO, projection=["title", "artist"]).rows
        assert ("Volatile Song", "Public Artist") in rows
        assert env.spawn(A).query(AUDIO).rows == []

    def test_delegate_update_via_files_cow(self, env):
        a = env.spawn(A)
        uri = a.insert(FILES_URI, ContentValues({"_data": "/p.jpg", "media_type": 1, "title": "orig"}))
        delegate = env.spawn(B, initiator=A)
        delegate.update(uri, ContentValues({"title": "renamed"}))
        assert [r[0] for r in delegate.query(IMAGES, projection=["title"]).rows] == ["renamed"]
        assert [r[0] for r in a.query(IMAGES, projection=["title"]).rows] == ["orig"]

    def test_initiator_reads_volatile_media_via_tmp_uri(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        delegate.insert(FILES_URI, ContentValues({"_data": "/v.jpg", "media_type": 1, "title": "voltitle"}))
        rows = a.query(FILES_URI.to_volatile()).rows
        assert any("voltitle" in row for row in rows)


class TestScannerAndThumbnails:
    def test_public_scan_creates_public_thumbnail(self, env):
        api = env.spawn(A)
        path = api.write_external("DCIM/pic.jpg", b"\xff\xd8IMAGEDATA")
        api.scan_media(path)
        thumb = "/storage/sdcard/DCIM/.thumbnails/pic.jpg.thumb"
        assert env.spawn(B).sys.exists(thumb)

    def test_delegate_scan_thumbnail_is_volatile(self, env):
        a = env.spawn(A)
        a.write_external("DCIM/private.jpg", b"\xff\xd8PRIVATE")
        delegate = env.spawn(B, initiator=A)
        delegate.scan_media("/storage/sdcard/DCIM/private.jpg")
        thumb = "/storage/sdcard/DCIM/.thumbnails/private.jpg.thumb"
        assert not env.spawn(B).sys.exists(thumb)  # not public
        assert a.sys.exists("/storage/sdcard/tmp/DCIM/.thumbnails/private.jpg.thumb")

    def test_scan_extracts_size_and_type(self, env):
        api = env.spawn(A)
        path = api.write_external("DCIM/sized.jpg", b"\xff\xd8" + b"x" * 100)
        api.scan_media(path)
        row = api.query(FILES_URI, projection=["media_type", "size"]).rows[0]
        assert row == (MEDIA_TYPE_IMAGE, 102)

    def test_initiator_volatile_scan(self, env):
        api = env.spawn(A)
        path = api.write_external("DCIM/v.jpg", b"\xff\xd8V")
        uri = api.scan_media(path, volatile=True)
        assert uri.is_volatile
        assert env.spawn(B).query(FILES_URI).rows == []

    def test_open_file_follows_record_state(self, env):
        api = env.spawn(A)
        path = api.write_external("DCIM/both.jpg", b"\xff\xd8CONTENT")
        uri = api.scan_media(path)
        assert api.open_input(uri) == b"\xff\xd8CONTENT"
