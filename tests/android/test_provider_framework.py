"""Content-resolver framework tests: routing, per-URI grants, app-defined
providers behind the Binder policy."""

import pytest

from repro.errors import IpcDenied, ProviderNotFound, SecurityException
from repro.android.content.provider import ContentProvider, ContentValues, UriPermissionGrants
from repro.android.uri import Uri
from repro import AndroidManifest
from repro.minisql.engine import ResultSet

A = "com.app.owner"
B = "com.app.other"


class MiniProvider(ContentProvider):
    """A tiny app-defined provider for framework tests."""

    authority = "mini.provider"
    owner = A

    def __init__(self):
        self.data = {1: b"attachment-bytes"}

    def open_file(self, uri, context):
        return self.data[uri.row_id]

    def query(self, uri, projection, where, params, order_by, context):
        return ResultSet(columns=["_id"], rows=[(k,) for k in self.data])


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    device.register_app_provider(MiniProvider())
    return device


class TestGrantsTable:
    def test_one_time_grant_consumed(self):
        grants = UriPermissionGrants()
        uri = Uri.content("x", "y", "1")
        grants.grant("com.b", uri, one_time=True)
        assert grants.consume("com.b", uri)
        assert not grants.consume("com.b", uri)

    def test_persistent_grant_survives(self):
        grants = UriPermissionGrants()
        uri = Uri.content("x", "y", "1")
        grants.grant("com.b", uri, one_time=False)
        assert grants.consume("com.b", uri)
        assert grants.consume("com.b", uri)

    def test_grant_is_per_grantee(self):
        grants = UriPermissionGrants()
        uri = Uri.content("x", "y", "1")
        grants.grant("com.b", uri)
        assert not grants.consume("com.c", uri)

    def test_grant_is_per_uri(self):
        grants = UriPermissionGrants()
        grants.grant("com.b", Uri.content("x", "y", "1"))
        assert not grants.consume("com.b", Uri.content("x", "y", "2"))


class TestAppDefinedProviders:
    def test_owner_opens_without_grant(self, env):
        owner = env.spawn(A)
        uri = Uri.content("mini.provider", "attachment", "1")
        assert owner.open_input(uri) == b"attachment-bytes"

    def test_other_app_needs_grant(self, env):
        other = env.spawn(B)
        uri = Uri.content("mini.provider", "attachment", "1")
        with pytest.raises(SecurityException):
            other.open_input(uri)

    def test_grant_allows_one_open(self, env):
        owner = env.spawn(A)
        other = env.spawn(B)
        uri = Uri.content("mini.provider", "attachment", "1")
        owner.grant_uri_permission(B, uri)
        assert other.open_input(uri) == b"attachment-bytes"
        with pytest.raises(SecurityException):
            other.open_input(uri)

    def test_owners_delegate_reaches_provider(self, env):
        """A delegate of the owner is in the owner's confinement domain, so
        the Binder policy admits it (with a grant)."""
        env.spawn(A).grant_uri_permission(B, Uri.content("mini.provider", "attachment", "1"))
        delegate = env.spawn(B, initiator=A)
        uri = Uri.content("mini.provider", "attachment", "1")
        assert delegate.open_input(uri) == b"attachment-bytes"

    def test_foreign_delegate_blocked_by_binder_policy(self, env):
        """B's delegate running for some *other* initiator may not reach
        A's provider at all, grant or no grant."""
        class Nop:
            def main(self, api, intent):
                return None

        env.install(AndroidManifest(package="com.app.third"), Nop())
        env.spawn(A).grant_uri_permission(B, Uri.content("mini.provider", "attachment", "1"))
        foreign = env.spawn(B, initiator="com.app.third")
        with pytest.raises(IpcDenied):
            foreign.open_input(Uri.content("mini.provider", "attachment", "1"))

    def test_unknown_authority_raises(self, env):
        with pytest.raises(ProviderNotFound):
            env.spawn(A).query(Uri.content("no.such.authority", "x"))

    def test_system_providers_always_reachable_by_delegates(self, env):
        delegate = env.spawn(B, initiator=A)
        result = delegate.query(Uri.content("user_dictionary", "words"))
        assert result.rows == []
