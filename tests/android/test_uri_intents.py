"""URI and intent tests, including Maxoid's volatile URIs and flag."""

import pytest

from repro.android.intents import Intent, IntentFilter
from repro.android.uri import Uri


class TestUri:
    def test_parse(self):
        uri = Uri.parse("content://user_dictionary/words/7")
        assert uri.scheme == "content"
        assert uri.authority == "user_dictionary"
        assert uri.segments == ("words", "7")

    def test_str_roundtrip(self):
        text = "content://media/files/3"
        assert str(Uri.parse(text)) == text

    def test_parse_rejects_non_uri(self):
        with pytest.raises(ValueError):
            Uri.parse("not-a-uri")

    def test_content_constructor(self):
        assert str(Uri.content("downloads", "all_downloads")) == "content://downloads/all_downloads"

    def test_file_uri(self):
        uri = Uri.file("/storage/sdcard/doc.pdf")
        assert uri.scheme == "file"
        assert uri.path == "/storage/sdcard/doc.pdf"

    def test_row_id(self):
        assert Uri.parse("content://a/words/12").row_id == 12
        assert Uri.parse("content://a/words").row_id is None

    def test_with_appended_id(self):
        uri = Uri.content("a", "words").with_appended_id(5)
        assert uri.row_id == 5

    def test_volatile_roundtrip(self):
        normal = Uri.parse("content://user_dictionary/words/7")
        volatile = normal.to_volatile()
        assert volatile.is_volatile
        assert str(volatile) == "content://user_dictionary/tmp/words/7"
        assert volatile.to_normal() == normal

    def test_to_volatile_idempotent(self):
        uri = Uri.parse("content://a/words").to_volatile()
        assert uri.to_volatile() == uri

    def test_normal_uri_is_not_volatile(self):
        assert not Uri.parse("content://a/words").is_volatile

    def test_uri_is_hashable(self):
        assert len({Uri.content("a", "x"), Uri.content("a", "x")}) == 1


class TestIntent:
    def test_flags(self):
        intent = Intent(Intent.ACTION_VIEW)
        assert not intent.wants_delegate
        intent.add_flag(Intent.FLAG_MAXOID_DELEGATE)
        assert intent.wants_delegate

    def test_grant_flag(self):
        intent = Intent(Intent.ACTION_VIEW, flags=Intent.FLAG_GRANT_READ_URI_PERMISSION)
        assert intent.has_flag(Intent.FLAG_GRANT_READ_URI_PERMISSION)

    def test_extras_copied(self):
        extras = {"k": 1}
        intent = Intent(Intent.ACTION_VIEW, extras=extras)
        extras["k"] = 2
        assert intent.extras["k"] == 1


class TestIntentFilter:
    def test_action_match(self):
        f = IntentFilter(actions=[Intent.ACTION_VIEW])
        assert f.matches(Intent(Intent.ACTION_VIEW))
        assert not f.matches(Intent(Intent.ACTION_EDIT))

    def test_no_actions_matches_any_action(self):
        assert IntentFilter().matches(Intent("custom.ACTION"))

    def test_scheme_required_when_intent_has_data(self):
        f = IntentFilter(actions=[Intent.ACTION_VIEW])
        with_data = Intent(Intent.ACTION_VIEW, data=Uri.content("auth", "x"))
        assert not f.matches(with_data)
        f_content = IntentFilter(actions=[Intent.ACTION_VIEW], schemes=["content"])
        assert f_content.matches(with_data)

    def test_scheme_filter_requires_data(self):
        f = IntentFilter(schemes=["content"])
        assert not f.matches(Intent(Intent.ACTION_VIEW))

    def test_authority_filter(self):
        f = IntentFilter(schemes=["content"], authorities=["media"])
        assert f.matches(Intent(Intent.ACTION_VIEW, data=Uri.content("media", "files")))
        assert not f.matches(Intent(Intent.ACTION_VIEW, data=Uri.content("other", "x")))

    def test_mime_prefix(self):
        f = IntentFilter(mime_prefixes=["video/"])
        assert f.matches(Intent(Intent.ACTION_VIEW, mime_type="video/mp4"))
        assert not f.matches(Intent(Intent.ACTION_VIEW, mime_type="image/png"))
        assert not f.matches(Intent(Intent.ACTION_VIEW))
