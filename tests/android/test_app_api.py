"""Tests for the app-facing API surface (AppApi)."""

import pytest

from repro.errors import FileNotFound, NetworkUnreachable
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro import AndroidManifest

A = "com.api.owner"
B = "com.api.helper"


class Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def env(device):
    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    device.network.publish("host.example", "res", b"resource-bytes")
    return device


class TestIdentity:
    def test_package_and_paths(self, env):
        api = env.spawn(A)
        assert api.package == A
        assert api.internal_dir == f"/data/data/{A}"
        assert api.extdir == "/storage/sdcard"

    def test_is_delegate_flag(self, env):
        assert not env.spawn(A).is_delegate
        assert env.spawn(B, initiator=A).is_delegate


class TestFileHelpers:
    def test_write_read_external(self, env):
        api = env.spawn(A)
        path = api.write_external("dir/file.bin", b"ext")
        assert path == "/storage/sdcard/dir/file.bin"
        assert api.read_external("dir/file.bin") == b"ext"

    def test_external_files_world_accessible(self, env):
        env.spawn(A).write_external("shared.bin", b"x")
        assert env.spawn(B).read_external("shared.bin") == b"x"

    def test_write_read_internal(self, env):
        api = env.spawn(A)
        path = api.write_internal("cfg/settings.bin", b"int")
        assert path == f"/data/data/{A}/cfg/settings.bin"
        assert api.read_internal("cfg/settings.bin") == b"int"

    def test_internal_files_private(self, env):
        env.spawn(A).write_internal("secret.bin", b"s")
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            env.spawn(B).sys.read_file(f"/data/data/{A}/secret.bin")


class TestNetworkHelpers:
    def test_fetch(self, env):
        assert env.spawn(A).fetch("host.example", "res") == b"resource-bytes"

    def test_fetch_unknown_resource(self, env):
        with pytest.raises(FileNotFound):
            env.spawn(A).fetch("host.example", "missing")

    def test_delegate_fetch_denied(self, env):
        with pytest.raises(NetworkUnreachable):
            env.spawn(B, initiator=A).fetch("host.example", "res")


class TestDatabaseHelpers:
    def test_private_db_roundtrip(self, env):
        api = env.spawn(A)
        db = api.db("store")
        db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, k TEXT, v TEXT)")
        db.execute("INSERT INTO kv (k, v) VALUES ('a', '1')")
        again = env.spawn(A).db("store")
        assert again.query("SELECT v FROM kv WHERE k = 'a'").scalar() == "1"

    def test_delegate_db_writes_confined(self, env):
        owner = env.spawn(B)
        db = owner.db("store")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t (v) VALUES ('original')")
        delegate = env.spawn(B, initiator=A)
        ddb = delegate.db("store")
        ddb.execute("INSERT INTO t (v) VALUES ('by-delegate')")
        assert len(ddb.query("SELECT * FROM t").rows) == 2
        fresh = env.spawn(B).db("store")
        assert len(fresh.query("SELECT * FROM t").rows) == 1


class TestProviderShortcuts:
    def test_insert_query_roundtrip(self, env):
        api = env.spawn(A)
        uri = api.insert(Uri.content("user_dictionary", "words"), ContentValues({"word": "w"}))
        assert api.query(uri).rows

    def test_grant_uri_permission_delegates_to_resolver(self, env):
        api = env.spawn(A)
        uri = Uri.content("some.app.provider", "item", "1")
        api.grant_uri_permission(B, uri)
        assert env.resolver.grants.has_grant(B, uri)


class TestMaxoidApis:
    def test_clear_my_volatile(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("junk.bin", b"j")
        a = env.spawn(A)
        assert a.clear_my_volatile() == 1

    def test_clear_my_delegate_priv(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_internal("state.bin", b"s")
        a = env.spawn(A)
        assert a.clear_my_delegate_priv() >= 1

    def test_ppriv_accessor(self, env):
        delegate = env.spawn(B, initiator=A)
        assert delegate.ppriv.available
        prefs = delegate.ppriv.preferences()
        prefs.put("k", "persistent")
        again = env.spawn(B, initiator=A)
        assert again.ppriv.preferences().get("k") == "persistent"
