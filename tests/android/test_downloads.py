"""Downloads provider tests: public/volatile downloads, the delegate
network guard, background worker, notifications (paper 5.3, 6.2)."""

import pytest

from repro.android.content.downloads import (
    DOWNLOADS_URI,
    STATUS_ERROR_NETWORK,
    STATUS_PENDING,
    STATUS_SUCCESS,
)
from repro.android.content.provider import ContentValues
from repro import AndroidManifest, Device

A = "com.app.initiator"
B = "com.app.helper"
HOST = "files.example.com"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    device.network.publish(HOST, "doc.bin", b"DOWNLOADED-CONTENT")
    return device


class TestPublicDownloads:
    def test_enqueue_and_fetch(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin")
        assert env.run_downloads() == 1
        assert env.download_manager.succeeded(api.process, download_id)

    def test_file_lands_in_public_storage(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin")
        env.run_downloads()
        other = env.spawn(B)
        assert other.sys.read_file("/storage/sdcard/Download/doc.bin") == b"DOWNLOADED-CONTENT"

    def test_notification_posted(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin")
        env.run_downloads()
        note = env.downloads.notifications[-1]
        assert note.title == "doc.bin"
        assert not note.is_volatile

    def test_missing_resource_marks_network_error(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download(f"https://{HOST}/ghost.bin", "ghost.bin")
        env.run_downloads()
        assert env.download_manager.status(api.process, download_id) == STATUS_ERROR_NETWORK

    def test_open_downloaded_file_via_provider(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin")
        env.run_downloads()
        data = env.download_manager.open_downloaded_file(api.process, download_id)
        assert data == b"DOWNLOADED-CONTENT"

    def test_headers_stored(self, env):
        api = env.spawn(A)
        api.enqueue_download(
            f"https://{HOST}/doc.bin", "doc.bin", headers={"X-Auth": "token"}
        )
        rows = env.downloads.proxy.query("request_headers", None).rows
        assert any("X-Auth" in row for row in rows)


class TestVolatileDownloads:
    def test_volatile_download_succeeds(self, env):
        api = env.spawn(A)
        download_id = api.enqueue_download(
            f"https://{HOST}/doc.bin", "doc.bin", volatile=True
        )
        assert env.run_downloads() == 1
        assert env.download_manager.status(api.process, download_id, volatile=True) == STATUS_SUCCESS

    def test_volatile_file_invisible_publicly(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        other = env.spawn(B)
        assert not other.sys.exists("/storage/sdcard/Download/doc.bin")

    def test_volatile_record_invisible_publicly(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        other = env.spawn(B)
        assert other.query(DOWNLOADS_URI).rows == []

    def test_volatile_file_visible_to_initiators_delegates(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        delegate = env.spawn(B, initiator=A)
        assert delegate.sys.read_file("/storage/sdcard/Download/doc.bin") == b"DOWNLOADED-CONTENT"

    def test_volatile_file_visible_to_initiator_under_tmp(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        assert api.sys.read_file("/storage/sdcard/tmp/Download/doc.bin") == b"DOWNLOADED-CONTENT"

    def test_volatile_record_visible_to_delegates(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        delegate = env.spawn(B, initiator=A)
        rows = delegate.query(DOWNLOADS_URI).rows
        assert len(rows) == 1

    def test_clear_volatile_discards_everything(self, env):
        api = env.spawn(A)
        api.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin", volatile=True)
        env.run_downloads()
        env.clear_volatile(A)
        delegate = env.spawn(B, initiator=A)
        assert delegate.query(DOWNLOADS_URI).rows == []
        assert not delegate.sys.exists("/storage/sdcard/Download/doc.bin")


class TestDelegateGuard:
    def test_delegate_fetch_request_gets_network_error(self, env):
        delegate = env.spawn(B, initiator=A)
        download_id = delegate.enqueue_download(f"https://{HOST}/doc.bin", "doc.bin")
        # The record exists (in Vol(A)) but is marked failed; the worker
        # never fetches it.
        assert env.run_downloads() == 0
        status = env.download_manager.status(delegate.process, download_id)
        assert status == STATUS_ERROR_NETWORK

    def test_delegate_may_record_existing_file_metadata(self, env):
        delegate = env.spawn(B, initiator=A)
        values = ContentValues({"title": "existing", "_data": "/storage/sdcard/x", "status": 200})
        uri = delegate.insert(DOWNLOADS_URI, values)
        assert uri.row_id >= 10_000_001
        rows = delegate.query(DOWNLOADS_URI).rows
        assert len(rows) == 1

    def test_delegate_metadata_stays_volatile(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.insert(
            DOWNLOADS_URI,
            ContentValues({"title": "note", "_data": "/storage/sdcard/x", "status": 200}),
        )
        assert env.spawn(B).query(DOWNLOADS_URI).rows == []
