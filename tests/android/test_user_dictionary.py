"""User Dictionary provider tests (paper section 5.1)."""

import pytest

from repro.errors import SecurityException
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro import AndroidManifest, Device

WORDS = Uri.content("user_dictionary", "words")
A = "com.app.alpha"
B = "com.app.beta"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


def words_of(api, uri=WORDS):
    result = api.query(uri, projection=["word"], order_by="_id")
    return [row[0] for row in result.rows]


class TestPublicOperations:
    def test_insert_returns_row_uri(self, env):
        api = env.spawn(A)
        uri = api.insert(WORDS, ContentValues({"word": "hello"}))
        assert uri.authority == "user_dictionary"
        assert uri.row_id == 1

    def test_public_words_visible_to_everyone(self, env):
        a = env.spawn(A)
        a.insert(WORDS, ContentValues({"word": "shared"}))
        b = env.spawn(B)
        assert words_of(b) == ["shared"]

    def test_update_by_row_uri(self, env):
        a = env.spawn(A)
        uri = a.insert(WORDS, ContentValues({"word": "old"}))
        a.update(uri, ContentValues({"word": "new"}))
        assert words_of(a) == ["new"]

    def test_delete(self, env):
        a = env.spawn(A)
        uri = a.insert(WORDS, ContentValues({"word": "bye"}))
        assert a.delete(uri) == 1
        assert words_of(a) == []

    def test_query_single_row_uri(self, env):
        a = env.spawn(A)
        a.insert(WORDS, ContentValues({"word": "one"}))
        uri = a.insert(WORDS, ContentValues({"word": "two"}))
        assert words_of(a, uri) == ["two"]


class TestDelegateConfinement:
    def test_delegate_reads_public_words(self, env):
        env.spawn(A).insert(WORDS, ContentValues({"word": "public"}))
        delegate = env.spawn(B, initiator=A)
        assert words_of(delegate) == ["public"]

    def test_delegate_insert_is_volatile(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "volatile"}))
        # The delegate reads its write...
        assert words_of(delegate) == ["volatile"]
        # ...but the public view is untouched.
        assert words_of(env.spawn(B)) == []

    def test_delegate_update_copies_on_write(self, env):
        a = env.spawn(A)
        uri = a.insert(WORDS, ContentValues({"word": "original"}))
        delegate = env.spawn(B, initiator=A)
        delegate.update(uri, ContentValues({"word": "changed"}))
        assert words_of(delegate) == ["changed"]
        assert words_of(a) == ["original"]

    def test_delegate_delete_is_whiteout(self, env):
        a = env.spawn(A)
        uri = a.insert(WORDS, ContentValues({"word": "keepme"}))
        delegate = env.spawn(B, initiator=A)
        delegate.delete(uri)
        assert words_of(delegate) == []
        assert words_of(a) == ["keepme"]

    def test_delegates_of_same_initiator_share_vol(self, env):
        first = env.spawn(B, initiator=A)
        first.insert(WORDS, ContentValues({"word": "shared-vol"}))
        second = env.spawn(B, initiator=A)
        assert words_of(second) == ["shared-vol"]

    def test_delegates_of_different_initiators_isolated(self, env):
        delegate_for_a = env.spawn(B, initiator=A)
        delegate_for_a.insert(WORDS, ContentValues({"word": "for-a"}))
        delegate_for_b = env.spawn(A, initiator=B)
        assert words_of(delegate_for_b) == []

    def test_delegate_sees_later_initiator_updates_until_cow(self, env):
        """Update visibility (U2): the shared copy tracks public inserts
        until the delegate writes that row."""
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        a.insert(WORDS, ContentValues({"word": "late"}))
        assert words_of(delegate) == ["late"]

    def test_delegate_cannot_use_volatile_uris(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(SecurityException):
            delegate.query(WORDS.to_volatile())


class TestVolatileUris:
    def test_initiator_reads_delegate_writes_via_tmp_uri(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "from-delegate"}))
        rows = a.query(WORDS.to_volatile()).rows
        assert any("from-delegate" in row for row in rows)

    def test_volatile_uri_by_id(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "v1"}))
        volatile_id = 10_000_001
        rows = a.query(WORDS.to_volatile().with_appended_id(volatile_id)).rows
        assert len(rows) == 1

    def test_initiator_creates_volatile_record_with_isvolatile(self, env):
        a = env.spawn(A)
        uri = a.insert(WORDS, ContentValues({"word": "incognito"}, is_volatile=True))
        assert uri.is_volatile
        # Public view does not include it...
        assert words_of(env.spawn(B)) == []
        # ...but A's delegates do.
        delegate = env.spawn(B, initiator=A)
        assert words_of(delegate) == ["incognito"]

    def test_delegate_may_not_use_isvolatile(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(SecurityException):
            delegate.insert(WORDS, ContentValues({"word": "x"}, is_volatile=True))

    def test_initiator_edits_volatile_record(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "draft"}))
        a.update(WORDS.to_volatile(), ContentValues({"word": "final"}))
        assert words_of(delegate) == ["final"]

    def test_initiator_deletes_volatile_records(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "junk"}))
        a.delete(WORDS.to_volatile())
        assert words_of(delegate) == []


class TestClearVolatile:
    def test_device_clear_volatile_discards_dictionary_vol(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.insert(WORDS, ContentValues({"word": "temp"}))
        env.clear_volatile(A)
        fresh = env.spawn(B, initiator=A)
        assert words_of(fresh) == []
