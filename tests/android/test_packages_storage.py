"""Package manager, storage layout, shared prefs, private databases."""

import pytest

from repro.errors import PackageNotFound
from repro.android.intents import Intent, IntentFilter
from repro.android.packages import AndroidManifest, PackageManager
from repro.android.permissions import Permission
from repro.android.storage import PrivateDatabase, SharedPreferences, StorageLayout
from repro.kernel.mounts import MountNamespace
from repro.kernel.proc import Process, TaskContext
from repro.kernel.syscall import Syscalls
from repro.kernel.vfs import Credentials, Filesystem, ROOT_CRED


@pytest.fixture
def pm():
    return PackageManager(Filesystem(label="system"))


def manifest(package, handles=None, permissions=frozenset()):
    return AndroidManifest(package=package, handles=handles or [], permissions=permissions)


class TestPackageManager:
    def test_install_assigns_distinct_uids(self, pm):
        a = pm.install(manifest("com.a"))
        b = pm.install(manifest("com.b"))
        assert a.uid != b.uid
        assert a.uid >= 10001

    def test_install_creates_private_dir(self):
        fs = Filesystem()
        pm = PackageManager(fs)
        installed = pm.install(manifest("com.a"))
        stat = fs.stat("/data/data/com.a", ROOT_CRED)
        assert stat.is_dir
        assert stat.uid == installed.uid
        # 0751 like Android 4.3: searchable by others (the GDrive cache
        # trick), but not listable or writable.
        assert stat.mode == 0o751

    def test_double_install_rejected(self, pm):
        pm.install(manifest("com.a"))
        with pytest.raises(ValueError):
            pm.install(manifest("com.a"))

    def test_get_unknown_raises(self, pm):
        with pytest.raises(PackageNotFound):
            pm.get("com.ghost")

    def test_uninstall(self, pm):
        pm.install(manifest("com.a"))
        pm.uninstall("com.a")
        assert not pm.is_installed("com.a")

    def test_permissions(self, pm):
        pm.install(manifest("com.a", permissions=frozenset([Permission.INTERNET])))
        assert pm.has_permission("com.a", Permission.INTERNET)
        assert not pm.has_permission("com.a", Permission.CAMERA)

    def test_resolve_by_filter(self, pm):
        pm.install(manifest("com.viewer", handles=[IntentFilter(actions=[Intent.ACTION_VIEW])]))
        pm.install(manifest("com.other"))
        assert pm.resolve_intent(Intent(Intent.ACTION_VIEW)) == ["com.viewer"]

    def test_resolve_excludes_sender(self, pm):
        pm.install(manifest("com.viewer", handles=[IntentFilter(actions=[Intent.ACTION_VIEW])]))
        assert pm.resolve_intent(Intent(Intent.ACTION_VIEW), exclude="com.viewer") == []

    def test_resolve_explicit_component(self, pm):
        pm.install(manifest("com.a"))
        assert pm.resolve_intent(Intent("whatever", component="com.a")) == ["com.a"]

    def test_resolve_priority_order(self, pm):
        pm.install(
            manifest("com.zzz", handles=[IntentFilter(actions=[Intent.ACTION_VIEW], priority=5)])
        )
        pm.install(
            manifest("com.aaa", handles=[IntentFilter(actions=[Intent.ACTION_VIEW], priority=1)])
        )
        assert pm.resolve_intent(Intent(Intent.ACTION_VIEW)) == ["com.zzz", "com.aaa"]


class TestStorageLayout:
    def test_paths(self):
        layout = StorageLayout("com.example")
        assert layout.internal_dir == "/data/data/com.example"
        assert layout.ppriv_dir == "/data/data/ppriv/com.example"
        assert layout.database_path("x") == "/data/data/com.example/databases/x.db"
        assert layout.ppriv_database_path("x") == "/data/data/ppriv/com.example/databases/x.db"


def make_sys(uid=0):
    process = Process(
        cred=Credentials(uid=uid),
        namespace=MountNamespace(Filesystem()),
        context=TaskContext(app="com.a"),
    )
    return Syscalls(process)


class TestSharedPreferences:
    def test_put_get(self):
        sys = make_sys()
        prefs = SharedPreferences(sys, "/data/prefs.json")
        prefs.put("theme", "dark")
        assert prefs.get("theme") == "dark"

    def test_default(self):
        prefs = SharedPreferences(make_sys(), "/data/prefs.json")
        assert prefs.get("missing", 42) == 42

    def test_remove(self):
        prefs = SharedPreferences(make_sys(), "/data/prefs.json")
        prefs.put("k", 1)
        prefs.remove("k")
        assert prefs.get("k") is None

    def test_append_to_list_with_cap(self):
        prefs = SharedPreferences(make_sys(), "/data/prefs.json")
        for index in range(5):
            prefs.append_to_list("recent", index, max_length=3)
        assert prefs.get("recent") == [2, 3, 4]

    def test_persisted_as_file(self):
        sys = make_sys()
        prefs = SharedPreferences(sys, "/data/prefs.json")
        prefs.put("k", "v")
        assert b'"k"' in sys.read_file("/data/prefs.json")


class TestPrivateDatabase:
    def test_create_insert_query(self):
        sys = make_sys()
        db = PrivateDatabase(sys, "/data/app.db")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t (v) VALUES (?)", ["hello"])
        assert db.query("SELECT v FROM t").rows == [("hello",)]

    def test_persists_across_reopen(self):
        sys = make_sys()
        db = PrivateDatabase(sys, "/data/app.db")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t (v) VALUES ('persisted')")
        reopened = PrivateDatabase(sys, "/data/app.db")
        assert reopened.query("SELECT v FROM t").rows == [("persisted",)]

    def test_blob_values_survive_serialization(self):
        sys = make_sys()
        db = PrivateDatabase(sys, "/data/app.db")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, b BLOB)")
        db.execute("INSERT INTO t (b) VALUES (?)", [b"\x00\x01\xff"])
        reopened = PrivateDatabase(sys, "/data/app.db")
        assert reopened.query("SELECT b FROM t").rows == [(b"\x00\x01\xff",)]

    def test_autoincrement_continues_after_reopen(self):
        sys = make_sys()
        db = PrivateDatabase(sys, "/data/app.db")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO t (v) VALUES ('a')")
        reopened = PrivateDatabase(sys, "/data/app.db")
        result = reopened.execute("INSERT INTO t (v) VALUES ('b')")
        assert result.lastrowid == 2

    def test_database_file_is_the_unit_of_state(self):
        """The Maxoid-critical property: the whole DB rides in one file, so
        Aufs copy-up forks it wholesale."""
        sys = make_sys()
        db = PrivateDatabase(sys, "/data/app.db")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        raw = sys.read_file("/data/app.db")
        assert b"ddl" in raw
