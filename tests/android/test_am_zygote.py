"""Activity Manager + Zygote tests: context decisions, kill-on-conflict,
broadcast scoping, launcher gestures (paper sections 3.4, 6.2, 6.3)."""

import pytest

from repro.errors import ActivityNotFound, NestedDelegationError
from repro.android.intents import Intent, IntentFilter
from repro import AndroidManifest, Device, MaxoidManifest

A = "com.app.a"
B = "com.app.b"
C = "com.app.c"


class Recorder:
    """App stub that records each invocation's context."""

    def __init__(self):
        self.runs = []

    def main(self, api, intent):
        self.runs.append(str(api.process.context))
        return intent.extras.get("reply")


@pytest.fixture
def env(device):
    apps = {}
    for package in (A, B, C):
        apps[package] = Recorder()
        device.install(
            AndroidManifest(
                package=package,
                handles=[IntentFilter(actions=[Intent.ACTION_VIEW, Intent.ACTION_SEND])],
            ),
            apps[package],
        )
    device.apps = apps
    return device


class TestZygote:
    def test_fork_sets_uid_and_context(self, env):
        process = env.zygote.fork_app(B, initiator=A)
        assert process.context.app == B
        assert process.context.initiator == A
        assert process.cred.uid == env.packages.get(B).uid

    def test_fork_self_initiator_normalizes(self, env):
        process = env.zygote.fork_app(B, initiator=B)
        assert not process.context.is_delegate

    def test_sysfs_stamped(self, env):
        process = env.zygote.fork_app(B, initiator=A)
        assert env.sysfs.read_context(process.pid).initiator == A

    def test_namespaces_are_private(self, env):
        first = env.zygote.fork_app(B)
        second = env.zygote.fork_app(B, initiator=A)
        assert first.namespace is not second.namespace


class TestInvocationDecisions:
    def test_plain_invocation_runs_normally(self, env):
        a = env.spawn(A)
        invocation = env.am.start_activity(a.process, Intent(Intent.ACTION_VIEW))
        assert not invocation.process.context.is_delegate

    def test_delegate_flag_creates_delegate(self, env):
        a = env.spawn(A)
        intent = Intent(Intent.ACTION_VIEW, flags=Intent.FLAG_MAXOID_DELEGATE)
        invocation = env.am.start_activity(a.process, intent)
        assert invocation.process.context.initiator == A

    def test_manifest_filter_creates_delegate(self, device):
        recorder = Recorder()
        device.install(
            AndroidManifest(
                package=A,
                maxoid=MaxoidManifest(
                    private_filters=[IntentFilter(actions=[Intent.ACTION_SEND])]
                ),
            ),
            recorder,
        )
        device.install(
            AndroidManifest(package=B, handles=[IntentFilter()]), Recorder()
        )
        a = device.spawn(A)
        delegated = device.am.start_activity(a.process, Intent(Intent.ACTION_SEND))
        assert delegated.process.context.initiator == A
        normal = device.am.start_activity(a.process, Intent(Intent.ACTION_VIEW))
        assert not normal.process.context.is_delegate

    def test_blacklist_mode_inverts(self, device):
        device.install(
            AndroidManifest(
                package=A,
                maxoid=MaxoidManifest(
                    private_filters=[IntentFilter(actions=[Intent.ACTION_SEND])],
                    filter_mode="blacklist",
                ),
            ),
            Recorder(),
        )
        device.install(AndroidManifest(package=B, handles=[IntentFilter()]), Recorder())
        a = device.spawn(A)
        assert not device.am.start_activity(
            a.process, Intent(Intent.ACTION_SEND)
        ).process.context.is_delegate
        assert device.am.start_activity(
            a.process, Intent(Intent.ACTION_VIEW)
        ).process.context.initiator == A

    def test_invocation_transitivity(self, env):
        delegate = env.spawn(B, initiator=A)
        invocation = env.am.start_activity(
            delegate.process, Intent(Intent.ACTION_VIEW, component=C)
        )
        # B^A invoking C yields C^A, not C^B.
        assert invocation.target == C
        assert invocation.process.context.initiator == A

    def test_delegate_invoking_its_initiator_runs_it_normally(self, env):
        delegate = env.spawn(B, initiator=A)
        invocation = env.am.start_activity(
            delegate.process, Intent(Intent.ACTION_VIEW, component=A)
        )
        # A on behalf of A is just A.
        assert not invocation.process.context.is_delegate

    def test_nested_delegation_rejected(self, env):
        delegate = env.spawn(B, initiator=A)
        intent = Intent(Intent.ACTION_VIEW, flags=Intent.FLAG_MAXOID_DELEGATE)
        with pytest.raises(NestedDelegationError):
            env.am.start_activity(delegate.process, intent)

    def test_invoking_self_as_delegate_runs_normally(self, env):
        a = env.spawn(A)
        intent = Intent(
            Intent.ACTION_VIEW, component=A, flags=Intent.FLAG_MAXOID_DELEGATE
        )
        invocation = env.am.start_activity(a.process, intent)
        assert not invocation.process.context.is_delegate

    def test_unresolvable_intent_raises(self, env):
        a = env.spawn(A)
        with pytest.raises(ActivityNotFound):
            env.am.start_activity(a.process, Intent("no.such.ACTION", component=None, mime_type="x/y"))

    def test_result_returned_to_invoker(self, env):
        a = env.spawn(A)
        invocation = env.am.start_activity(
            a.process, Intent(Intent.ACTION_VIEW, extras={"reply": 42})
        )
        assert invocation.result == 42

    def test_stock_device_never_creates_delegates(self, stock_device):
        stock_device.install(
            AndroidManifest(package=A), Recorder()
        )
        stock_device.install(
            AndroidManifest(package=B, handles=[IntentFilter()]), Recorder()
        )
        a = stock_device.spawn(A)
        intent = Intent(Intent.ACTION_VIEW, flags=Intent.FLAG_MAXOID_DELEGATE)
        invocation = stock_device.am.start_activity(a.process, intent)
        assert not invocation.process.context.is_delegate


class TestKillOnConflict:
    def test_running_normal_instance_killed_when_delegate_starts(self, env):
        a = env.spawn(A)
        normal_b = env.spawn(B)
        intent = Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
        env.am.start_activity(a.process, intent)
        assert not normal_b.process.alive

    def test_delegate_killed_when_other_context_starts(self, env):
        a = env.spawn(A)
        intent = Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
        delegate = env.am.start_activity(a.process, intent).process
        c = env.spawn(C)
        env.am.start_activity(c.process, Intent(Intent.ACTION_VIEW, component=B))
        assert not delegate.alive

    def test_same_context_instance_not_killed(self, env):
        a = env.spawn(A)
        intent = Intent(Intent.ACTION_VIEW, component=B, flags=Intent.FLAG_MAXOID_DELEGATE)
        first = env.am.start_activity(a.process, intent).process
        env.am.start_activity(a.process, intent)
        assert first.alive


class TestBroadcasts:
    def test_initiator_broadcast_reaches_everyone(self, env):
        received = []
        b = env.spawn(B)
        env.am.register_receiver(
            b.process, IntentFilter(actions=["evt"]), lambda p, i: received.append("b")
        )
        a = env.spawn(A)
        assert env.am.send_broadcast(a.process, Intent("evt")) == 1
        assert received == ["b"]

    def test_delegate_broadcast_confined_to_domain(self, env):
        received = []
        outsider = env.spawn(C)
        env.am.register_receiver(
            outsider.process, IntentFilter(actions=["evt"]), lambda p, i: received.append("outsider")
        )
        sibling = env.spawn(C, initiator=A)
        env.am.register_receiver(
            sibling.process, IntentFilter(actions=["evt"]), lambda p, i: received.append("sibling")
        )
        initiator = env.spawn(A)
        env.am.register_receiver(
            initiator.process, IntentFilter(actions=["evt"]), lambda p, i: received.append("initiator")
        )
        delegate = env.spawn(B, initiator=A)
        delivered = env.am.send_broadcast(delegate.process, Intent("evt"))
        assert delivered == 2
        assert sorted(received) == ["initiator", "sibling"]

    def test_dead_receiver_skipped(self, env):
        received = []
        b = env.spawn(B)
        env.am.register_receiver(
            b.process, IntentFilter(actions=["evt"]), lambda p, i: received.append("b")
        )
        b.process.kill()
        a = env.spawn(A)
        assert env.am.send_broadcast(a.process, Intent("evt")) == 0


class TestLauncher:
    def test_tap_starts_normally(self, env):
        invocation = env.launch(B)
        assert not invocation.process.context.is_delegate

    def test_drag_to_initiator_starts_delegate(self, env):
        invocation = env.launch_as_delegate(B, A)
        assert invocation.process.context.initiator == A
        assert env.apps[B].runs[-1] == f"{B}^{A}"

    def test_clear_vol_gesture(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("junk.txt", b"side effect")
        assert env.launcher.clear_vol(A) >= 1

    def test_clear_priv_gesture_kills_delegates(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_internal("state.bin", b"x")
        env.launcher.clear_priv(A)
        assert not delegate.process.alive
