"""Smaller framework pieces: ContentValues, media type detection, the
SimApp dispatch mechanism, download notifications."""

import pytest

from repro.android.content.downloads import DownloadNotification
from repro.android.content.media import (
    MEDIA_TYPE_AUDIO,
    MEDIA_TYPE_IMAGE,
    MEDIA_TYPE_NONE,
    MEDIA_TYPE_VIDEO,
)
from repro.android.content.provider import ContentValues
from repro.android.intents import Intent
from repro.android.services.media_scanner import media_type_for
from repro.apps.base import AppBuild, SimApp
from repro import AndroidManifest, Device


class TestContentValues:
    def test_put_get_chainable(self):
        values = ContentValues().put("a", 1).put("b", 2)
        assert values.get("a") == 1
        assert len(values) == 2
        assert "b" in values

    def test_as_dict_is_a_copy(self):
        values = ContentValues({"k": 1})
        snapshot = values.as_dict()
        snapshot["k"] = 99
        assert values.get("k") == 1

    def test_default_not_volatile(self):
        assert not ContentValues().is_volatile
        assert ContentValues(is_volatile=True).is_volatile

    def test_get_default(self):
        assert ContentValues().get("missing", "fb") == "fb"


class TestMediaTypeDetection:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/a/photo.jpg", MEDIA_TYPE_IMAGE),
            ("/a/photo.JPEG", MEDIA_TYPE_IMAGE),
            ("/a/art.png", MEDIA_TYPE_IMAGE),
            ("/a/song.mp3", MEDIA_TYPE_AUDIO),
            ("/a/clip.mp4", MEDIA_TYPE_VIDEO),
            ("/a/film.mkv", MEDIA_TYPE_VIDEO),
            ("/a/readme.txt", MEDIA_TYPE_NONE),
            ("/a/no-extension", MEDIA_TYPE_NONE),
        ],
    )
    def test_extension_mapping(self, path, expected):
        assert media_type_for(path) == expected


class TestDownloadNotification:
    def test_volatility_derives_from_state(self):
        public = DownloadNotification(1, "t", "/p", state=None)
        volatile = DownloadNotification(2, "t", "/p", state="com.app")
        assert not public.is_volatile
        assert volatile.is_volatile


class TestSimAppDispatch:
    class EchoApp(SimApp):
        BUILD = AppBuild(package="com.dispatch.echo")

        def on_view(self, api, intent):
            return "viewed"

        def on_scan(self, api, intent):
            return "scanned"

        def on_default(self, api, intent):
            return f"default:{intent.action}"

    @pytest.fixture
    def env(self):
        device = Device(maxoid_enabled=True)
        app = self.EchoApp.install(device)
        return device, app

    def test_dispatch_to_action_handler(self, env):
        device, app = env
        api = device.spawn("com.dispatch.echo")
        assert app.main(api, Intent(Intent.ACTION_VIEW)) == "viewed"
        assert app.main(api, Intent(Intent.ACTION_SCAN)) == "scanned"

    def test_unknown_action_falls_back_to_default(self, env):
        device, app = env
        api = device.spawn("com.dispatch.echo")
        assert app.main(api, Intent("custom.WEIRD")) == "default:custom.WEIRD"

    def test_known_action_without_handler_falls_back(self, env):
        device, app = env
        api = device.spawn("com.dispatch.echo")
        # EDIT maps to on_edit, which EchoApp lacks.
        assert app.main(api, Intent(Intent.ACTION_EDIT)) == f"default:{Intent.ACTION_EDIT}"

    def test_invocations_recorded(self, env):
        device, app = env
        api = device.spawn("com.dispatch.echo")
        app.main(api, Intent(Intent.ACTION_VIEW))
        app.main(api, Intent(Intent.ACTION_SCAN))
        assert app.invocations == [Intent.ACTION_VIEW, Intent.ACTION_SCAN]

    def test_build_manifest_materializes(self):
        manifest = self.EchoApp.BUILD.manifest()
        assert isinstance(manifest, AndroidManifest)
        assert manifest.package == "com.dispatch.echo"
        assert manifest.label == "echo"
