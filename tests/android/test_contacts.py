"""Contacts provider tests (the fourth COW-proxy port, an extension —
paper 5.1 names Contacts among the leak-prone shared resources)."""

import pytest

from repro.errors import SecurityException
from repro.android.content.contacts import CONTACTS_URI, DETAILS_URI, PHONES_URI
from repro.android.content.provider import ContentValues
from repro import AndroidManifest

A = "com.app.dialer"
B = "com.app.messenger"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


def add_contact(env, api, name, number):
    return env.contacts.add_contact(env.resolver, api.process, name, number)


class TestPublicContacts:
    def test_add_and_query(self, env):
        api = env.spawn(A)
        contact_id = add_contact(env, api, "Ada", "+1-555-0001")
        rows = api.query(CONTACTS_URI, projection=["display_name"]).rows
        assert rows == [("Ada",)]
        assert contact_id == 1

    def test_details_view_joins(self, env):
        api = env.spawn(A)
        add_contact(env, api, "Ada", "+1-555-0001")
        add_contact(env, api, "Grace", "+1-555-0002")
        rows = api.query(DETAILS_URI, projection=["display_name", "number"], order_by="_id").rows
        assert rows == [("Ada", "+1-555-0001"), ("Grace", "+1-555-0002")]

    def test_details_view_read_only(self, env):
        api = env.spawn(A)
        with pytest.raises(SecurityException):
            api.insert(DETAILS_URI, ContentValues({"display_name": "nope"}))

    def test_update_by_id(self, env):
        api = env.spawn(A)
        add_contact(env, api, "Ada", "+1")
        api.update(CONTACTS_URI.with_appended_id(1), ContentValues({"starred": 1}))
        assert api.query(CONTACTS_URI, projection=["starred"]).rows == [(1,)]

    def test_not_null_name_enforced(self, env):
        from repro.errors import SqlIntegrityError

        api = env.spawn(A)
        with pytest.raises(SqlIntegrityError):
            api.insert(CONTACTS_URI, ContentValues({"starred": 1}))


class TestDelegateConfinement:
    def test_delegate_added_contact_is_volatile(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        add_contact(env, delegate, "Secret Contact", "+1-555-9999")
        # The delegate reads its write through the details view...
        rows = delegate.query(DETAILS_URI, projection=["display_name"]).rows
        assert rows == [("Secret Contact",)]
        # ...publicly nothing exists.
        assert env.spawn(B).query(CONTACTS_URI).rows == []

    def test_delegate_sees_public_plus_volatile(self, env):
        a = env.spawn(A)
        add_contact(env, a, "Public Person", "+1")
        delegate = env.spawn(B, initiator=A)
        add_contact(env, delegate, "Volatile Person", "+2")
        names = sorted(
            r[0] for r in delegate.query(CONTACTS_URI, projection=["display_name"]).rows
        )
        assert names == ["Public Person", "Volatile Person"]

    def test_delegate_edit_copies_on_write(self, env):
        a = env.spawn(A)
        add_contact(env, a, "Ada", "+1")
        delegate = env.spawn(B, initiator=A)
        delegate.update(
            CONTACTS_URI.with_appended_id(1), ContentValues({"display_name": "Hacked"})
        )
        assert a.query(CONTACTS_URI, projection=["display_name"]).rows == [("Ada",)]

    def test_delegate_delete_is_whiteout(self, env):
        a = env.spawn(A)
        add_contact(env, a, "Ada", "+1")
        delegate = env.spawn(B, initiator=A)
        delegate.delete(CONTACTS_URI.with_appended_id(1))
        assert delegate.query(CONTACTS_URI).rows == []
        assert len(a.query(CONTACTS_URI).rows) == 1

    def test_initiator_commits_volatile_contact(self, env):
        a = env.spawn(A)
        delegate = env.spawn(B, initiator=A)
        add_contact(env, delegate, "Keeper", "+7")
        volatile = a.query(CONTACTS_URI.to_volatile()).rows
        assert volatile
        row_id = volatile[0][0]
        assert env.contacts.proxy.commit_volatile("contacts", A, row_id)
        assert ("Keeper",) in env.spawn(B).query(
            CONTACTS_URI, projection=["display_name"]
        ).rows

    def test_clear_volatile_discards_contacts(self, env):
        delegate = env.spawn(B, initiator=A)
        add_contact(env, delegate, "Junk", "+0")
        env.clear_volatile(A)
        fresh = env.spawn(B, initiator=A)
        assert fresh.query(CONTACTS_URI).rows == []

    def test_join_view_over_mixed_state(self, env):
        """The COW hierarchy: a volatile phone number attached to a public
        contact appears in the delegate's details view only."""
        a = env.spawn(A)
        add_contact(env, a, "Ada", "+1")
        delegate = env.spawn(B, initiator=A)
        delegate.insert(PHONES_URI, ContentValues({"contact_id": 1, "number": "+extra"}))
        delegate_numbers = sorted(
            r[1] for r in delegate.query(DETAILS_URI, projection=["display_name", "number"]).rows
        )
        assert delegate_numbers == ["+1", "+extra"]
        public_numbers = [r[1] for r in a.query(DETAILS_URI, projection=["display_name", "number"]).rows]
        assert public_numbers == ["+1"]
