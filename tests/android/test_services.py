"""System service tests: clipboard domains, Bluetooth/SMS guards
(paper section 6.2, item 5)."""

import pytest

from repro.errors import DelegateNetworkDenied
from repro import AndroidManifest

A = "com.app.a"
B = "com.app.b"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


class TestClipboard:
    def test_initiators_share_main_clipboard(self, env):
        env.spawn(A).clipboard_set("main text")
        assert env.spawn(B).clipboard_get() == "main text"

    def test_delegate_copy_does_not_pollute_main(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.clipboard_set("secret from Priv(A)")
        assert env.spawn(B).clipboard_get() is None

    def test_delegate_first_paste_forks_from_main(self, env):
        env.spawn(A).clipboard_set("pre-confinement")
        delegate = env.spawn(B, initiator=A)
        assert delegate.clipboard_get() == "pre-confinement"

    def test_delegate_clipboard_shared_within_domain(self, env):
        first = env.spawn(B, initiator=A)
        first.clipboard_set("domain text")
        sibling = env.spawn(A, initiator=A)  # A itself
        delegate_sibling = env.spawn(B, initiator=A)
        assert delegate_sibling.clipboard_get() == "domain text"

    def test_main_updates_after_fork_invisible_to_delegate(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.clipboard_get()  # forks the domain clipboard
        env.spawn(A).clipboard_set("later main text")
        assert delegate.clipboard_get() != "later main text"

    def test_clear_vol_discards_delegate_clipboard(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.clipboard_set("volatile clip")
        env.clear_volatile(A)
        fresh = env.spawn(B, initiator=A)
        assert fresh.clipboard_get() != "volatile clip"

    def test_stock_clipboard_is_global(self, stock_device):
        class Nop:
            def main(self, api, intent):
                return None

        stock_device.install(AndroidManifest(package=A), Nop())
        stock_device.install(AndroidManifest(package=B), Nop())
        a = stock_device.spawn(A)
        a.clipboard_set("everyone sees")
        assert stock_device.spawn(B).clipboard_get() == "everyone sees"


class TestBluetoothGuard:
    def test_initiator_may_send(self, env):
        env.spawn(A).bluetooth_send("headset", b"payload")
        assert env.bluetooth.sent

    def test_delegate_denied(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(DelegateNetworkDenied):
            delegate.bluetooth_send("exfil-device", b"secret")
        assert not env.bluetooth.leaked(b"secret")


class TestSmsGuard:
    def test_initiator_may_send(self, env):
        env.spawn(A).send_sms("+1555", "hello")
        assert env.telephony.messages

    def test_delegate_denied(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(DelegateNetworkDenied):
            delegate.send_sms("+1555", "the secret")
        assert not env.telephony.leaked("the secret")

    def test_stock_device_has_no_guard(self, stock_device):
        class Nop:
            def main(self, api, intent):
                return None

        stock_device.install(AndroidManifest(package=A), Nop())
        stock_device.install(AndroidManifest(package=B), Nop())
        # No delegates exist on stock; a normal app may send.
        stock_device.spawn(B).send_sms("+1555", "ok")
        assert stock_device.telephony.messages
