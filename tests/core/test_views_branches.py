"""Mount plans (Table 2) and the branch manager's lifecycle rules."""

import pytest

from repro.android.storage import DATA_ROOT, EXTDIR
from repro.core.branches import BranchManager
from repro.core.manifest import MaxoidManifest
from repro.core.views import plan_delegate_mounts, plan_initiator_mounts
from repro.kernel.mounts import MountNamespace
from repro.kernel.vfs import Filesystem, ROOT_CRED

A = "com.example.a"
B = "com.example.b"

A_MANIFEST = MaxoidManifest(private_ext_dirs=["data/A"])
B_MANIFEST = MaxoidManifest(private_ext_dirs=["data/B"])


def plans_by_mountpoint(plans):
    return {p.mountpoint: p for p in plans}


class TestInitiatorPlan:
    def test_single_branch_everywhere(self):
        plans = plan_initiator_mounts(A, A_MANIFEST)
        for plan in plans:
            assert len(plan.branches) == 1, plan.mountpoint

    def test_table2_initiator_rows(self):
        table = plans_by_mountpoint(plan_initiator_mounts(A, A_MANIFEST))
        # EXTDIR: pub (rw)
        assert table[EXTDIR].branches[0].kind == "pub"
        assert table[EXTDIR].branches[0].writable
        # EXTDIR/data/A: A/data/A (rw)
        private = table[f"{EXTDIR}/data/A"].branches[0]
        assert private.kind == "extpriv"
        assert private.writable
        # EXTDIR/tmp: A/tmp (rw)
        tmp = table[f"{EXTDIR}/tmp"].branches[0]
        assert tmp.kind == "vol_ext"
        assert tmp.writable

    def test_no_private_dirs_without_manifest(self):
        plans = plan_initiator_mounts(A, None)
        mountpoints = [p.mountpoint for p in plans]
        assert f"{EXTDIR}/data/A" not in mountpoints


class TestDelegatePlan:
    def test_table2_delegate_rows(self):
        table = plans_by_mountpoint(plan_delegate_mounts(B, A, B_MANIFEST, A_MANIFEST))
        # EXTDIR: A/tmp (rw), pub
        extdir = table[EXTDIR].branches
        assert [b.kind for b in extdir] == ["vol_ext", "pub"]
        assert [b.writable for b in extdir] == [True, False]
        # EXTDIR/data/A: A/tmp/data/A (rw), A/data/A
        init_priv = table[f"{EXTDIR}/data/A"].branches
        assert [b.kind for b in init_priv] == ["vol_ext", "extpriv"]
        assert [b.writable for b in init_priv] == [True, False]
        # EXTDIR/data/B: B-A/data/B (rw), B/data/B
        own_priv = table[f"{EXTDIR}/data/B"].branches
        assert [b.kind for b in own_priv] == ["deleg_extpriv", "extpriv"]
        assert [b.writable for b in own_priv] == [True, False]

    def test_npriv_mount(self):
        table = plans_by_mountpoint(plan_delegate_mounts(B, A, None, None))
        npriv = table[f"{DATA_ROOT}/{B}"].branches
        assert [b.kind for b in npriv] == ["deleg_int", "system_priv"]
        assert [b.writable for b in npriv] == [True, False]

    def test_initiator_internal_exposed(self):
        table = plans_by_mountpoint(plan_delegate_mounts(B, A, None, None))
        exposed = table[f"{DATA_ROOT}/{A}"].branches
        assert [b.kind for b in exposed] == ["vol_int", "system_priv"]

    def test_ppriv_mount_single_branch(self):
        table = plans_by_mountpoint(plan_delegate_mounts(B, A, None, None))
        ppriv = table[f"{DATA_ROOT}/ppriv/{B}"].branches
        assert len(ppriv) == 1
        assert ppriv[0].kind == "ppriv"
        assert ppriv[0].writable

    def test_labels_use_paper_notation(self):
        table = plans_by_mountpoint(plan_delegate_mounts(B, A, B_MANIFEST, A_MANIFEST))
        assert table[EXTDIR].describe() == f"{EXTDIR}: a/tmp(rw), pub(ro)"


class TestBranchManager:
    @pytest.fixture
    def manager(self):
        system = Filesystem(label="system")
        system.mkdir(f"{DATA_ROOT}/{A}", ROOT_CRED, parents=True)
        system.mkdir(f"{DATA_ROOT}/{B}", ROOT_CRED, parents=True)
        return BranchManager(system)

    def test_materialize_mounts_all_plans(self, manager):
        base = MountNamespace(manager.system_fs)
        plans = plan_delegate_mounts(B, A, B_MANIFEST, A_MANIFEST)
        namespace = manager.materialize(base, plans)
        for plan in plans:
            assert plan.mountpoint in namespace.mount_points()
        assert manager.mounts_built == len(plans)

    def test_priv_version_changes_on_write(self, manager):
        before = manager.priv_version(B)
        manager.system_fs.write_file(f"{DATA_ROOT}/{B}/f", b"x", ROOT_CRED)
        assert manager.priv_version(B) > before

    def test_refork_discards_on_divergence(self, manager):
        assert manager.prepare_delegate_priv(B, A) is False  # first fork
        # Delegate branch gets some state.
        manager.deleg_fs.write_file(
            "/com_example_b@com_example_a/int/state", b"delegate data", ROOT_CRED
        )
        # No divergence: state kept.
        assert manager.prepare_delegate_priv(B, A) is False
        assert manager.deleg_fs.exists(
            "/com_example_b@com_example_a/int/state", ROOT_CRED
        )
        # Priv(B) diverges: state discarded.
        manager.system_fs.write_file(f"{DATA_ROOT}/{B}/new", b"user update", ROOT_CRED)
        assert manager.prepare_delegate_priv(B, A) is True
        assert not manager.deleg_fs.exists(
            "/com_example_b@com_example_a/int/state", ROOT_CRED
        )

    def test_consecutive_delegate_runs_keep_state(self, manager):
        """Running B^C in between does not discard nPriv(B^A) (3.2)."""
        manager.prepare_delegate_priv(B, A)
        manager.deleg_fs.write_file(
            "/com_example_b@com_example_a/int/keep", b"x", ROOT_CRED
        )
        manager.prepare_delegate_priv(B, "com.example.c")
        assert manager.prepare_delegate_priv(B, A) is False
        assert manager.deleg_fs.exists("/com_example_b@com_example_a/int/keep", ROOT_CRED)

    def test_volatile_listing_and_clearing(self, manager):
        manager.vol_fs.mkdir("/com_example_a/ext/Download", ROOT_CRED, parents=True)
        manager.vol_fs.write_file("/com_example_a/ext/Download/f", b"x", ROOT_CRED)
        manager.vol_fs.mkdir("/com_example_a/int", ROOT_CRED, parents=True)
        manager.vol_fs.write_file("/com_example_a/int/g", b"y", ROOT_CRED)
        assert manager.list_volatile_files(A) == ["/ext/Download/f", "/int/g"]
        assert manager.clear_volatile(A) == 2
        assert manager.list_volatile_files(A) == []

    def test_clear_delegate_priv(self, manager):
        manager.prepare_delegate_priv(B, A)
        manager.ppriv_fs.mkdir("/com_example_b@com_example_a", ROOT_CRED, parents=True)
        manager.ppriv_fs.write_file(
            "/com_example_b@com_example_a/recent.db", b"x", ROOT_CRED
        )
        cleared = manager.clear_delegate_priv(A)
        assert cleared == 2  # deleg branch + ppriv branch
        assert not manager.ppriv_fs.exists("/com_example_b@com_example_a", ROOT_CRED)

    def test_clear_delegate_priv_other_initiator_untouched(self, manager):
        manager.prepare_delegate_priv(B, A)
        manager.prepare_delegate_priv(B, "com.example.c")
        manager.deleg_fs.write_file(
            "/com_example_b@com_example_c/int/keep", b"x", ROOT_CRED
        )
        manager.clear_delegate_priv(A)
        assert manager.deleg_fs.exists("/com_example_b@com_example_c/int/keep", ROOT_CRED)
