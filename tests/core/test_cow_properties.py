"""Property-based tests for the COW proxy.

The central invariant (paper 3.1/3.3): for any interleaving of public and
per-initiator operations,

- each initiator's view equals a reference model (public rows overridden
  by that initiator's volatile writes, minus its whiteouts);
- the public view equals the public-only model (volatile state never
  leaks into Pub(all));
- initiators' volatile states never bleed into each other.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cow import CowProxy

INITIATORS = ["com.app.a", "com.app.b"]

words = st.text(alphabet="abcdef", min_size=1, max_size=6)


@st.composite
def operations(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("pub_insert"), st.just(0), words),
                st.tuples(st.just("vol_insert"), st.sampled_from([0, 1]), words),
                st.tuples(st.just("vol_update"), st.sampled_from([0, 1]), words),
                st.tuples(st.just("vol_delete"), st.sampled_from([0, 1]), words),
                st.tuples(st.just("pub_update"), st.just(0), words),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return ops


class TestCowProxyModel:
    @given(ops=operations())
    @settings(max_examples=40, deadline=None)
    def test_views_match_reference_model(self, ops):
        proxy = CowProxy()
        proxy.create_table("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT)")
        public = {}          # id -> value (the Pub(all) model)
        volatile = {initiator: {} for initiator in INITIATORS}  # id -> value
        whiteouts = {initiator: set() for initiator in INITIATORS}
        next_public = [1]
        next_volatile = {initiator: [10_000_001] for initiator in INITIATORS}

        def visible(initiator):
            view = {}
            for row_id, value in public.items():
                touched = row_id in volatile[initiator] or row_id in whiteouts[initiator]
                if not touched:
                    view[row_id] = value
            view.update(volatile[initiator])
            return view

        for op, who, value in ops:
            initiator = INITIATORS[who]
            if op == "pub_insert":
                row_id = proxy.insert("t", None, {"v": value})
                public[row_id] = value
                next_public[0] = row_id + 1
            elif op == "pub_update":
                if not public:
                    continue
                target = sorted(public)[0]
                proxy.update("t", None, {"v": value}, "_id = ?", [target])
                public[target] = value
            elif op == "vol_insert":
                row_id = proxy.insert("t", initiator, {"v": value})
                volatile[initiator][row_id] = value
                next_volatile[initiator][0] = row_id + 1
            elif op == "vol_update":
                view = visible(initiator)
                if not view:
                    continue
                target = sorted(view)[0]
                proxy.update("t", initiator, {"v": value}, "_id = ?", [target])
                volatile[initiator][target] = value
                whiteouts[initiator].discard(target)
            else:  # vol_delete
                view = visible(initiator)
                if not view:
                    continue
                target = sorted(view)[-1]
                proxy.delete("t", initiator, "_id = ?", [target])
                volatile[initiator].pop(target, None)
                whiteouts[initiator].add(target)

        # Public view == public model (S1/S2: volatile never leaks out).
        got_public = dict(proxy.query("t", None).rows)
        assert got_public == public
        # Each initiator's view == its model.
        for initiator in INITIATORS:
            got = dict(proxy.query("t", initiator).rows)
            assert got == visible(initiator), (initiator, ops)

    @given(ops=operations())
    @settings(max_examples=25, deadline=None)
    def test_discard_restores_public_view(self, ops):
        proxy = CowProxy()
        proxy.create_table("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT)")
        for op, who, value in ops:
            initiator = INITIATORS[who]
            try:
                if op == "pub_insert":
                    proxy.insert("t", None, {"v": value})
                elif op == "vol_insert":
                    proxy.insert("t", initiator, {"v": value})
                elif op == "vol_update":
                    proxy.update("t", initiator, {"v": value}, "_id = 1")
                elif op == "vol_delete":
                    proxy.delete("t", initiator, "_id = 1")
                else:
                    proxy.update("t", None, {"v": value}, "_id = 1")
            except Exception:
                continue
        public_before = dict(proxy.query("t", None).rows)
        for initiator in INITIATORS:
            proxy.discard_all_volatile(initiator)
        # Discarding volatile state never changes Pub(all)...
        assert dict(proxy.query("t", None).rows) == public_before
        # ...and every initiator now sees exactly the public view.
        for initiator in INITIATORS:
            assert dict(proxy.query("t", initiator).rows) == public_before
