"""XML Maxoid-manifest tests (paper 6.1: "an XML file called the Maxoid
manifest")."""

import pytest

from repro.android.intents import Intent
from repro.core.manifest import MaxoidManifest

DROPBOX_XML = """
<maxoid>
  <private-ext-dir path="Dropbox"/>
  <private-ext-dir path="data/sync"/>
  <private-intents mode="whitelist">
    <filter action="android.intent.action.VIEW"/>
    <filter action="android.intent.action.EDIT" scheme="file,content" priority="2"/>
  </private-intents>
</maxoid>
"""


class TestFromXml:
    def test_parses_private_dirs(self):
        manifest = MaxoidManifest.from_xml(DROPBOX_XML)
        assert manifest.private_ext_dirs == ["Dropbox", "data/sync"]

    def test_parses_filters(self):
        manifest = MaxoidManifest.from_xml(DROPBOX_XML)
        assert len(manifest.private_filters) == 2
        second = manifest.private_filters[1]
        assert second.actions == [Intent.ACTION_EDIT]
        assert second.schemes == ["file", "content"]
        assert second.priority == 2

    def test_filter_semantics_after_parse(self):
        manifest = MaxoidManifest.from_xml(DROPBOX_XML)
        assert manifest.intent_is_private(Intent(Intent.ACTION_VIEW))
        assert not manifest.intent_is_private(Intent(Intent.ACTION_SEND))

    def test_blacklist_mode(self):
        manifest = MaxoidManifest.from_xml(
            "<maxoid><private-intents mode='blacklist'/></maxoid>"
        )
        assert manifest.filter_mode == "blacklist"
        assert manifest.intent_is_private(Intent("anything.at.all"))

    def test_empty_manifest(self):
        manifest = MaxoidManifest.from_xml("<maxoid/>")
        assert manifest.private_ext_dirs == []
        assert manifest.private_filters == []

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError):
            MaxoidManifest.from_xml("<manifest/>")

    def test_malformed_xml_rejected(self):
        import xml.etree.ElementTree as ElementTree

        with pytest.raises(ElementTree.ParseError):
            MaxoidManifest.from_xml("<maxoid>")


class TestRoundTrip:
    def test_xml_round_trip(self):
        original = MaxoidManifest.from_xml(DROPBOX_XML)
        reparsed = MaxoidManifest.from_xml(original.to_xml())
        assert reparsed.private_ext_dirs == original.private_ext_dirs
        assert reparsed.filter_mode == original.filter_mode
        assert len(reparsed.private_filters) == len(original.private_filters)
        assert reparsed.private_filters[1].schemes == ["file", "content"]

    def test_default_manifest_serializes_minimal(self):
        assert MaxoidManifest().to_xml() == "<maxoid />"

    def test_installed_via_xml_manifest_confines(self, device):
        """End to end: an app installed with an XML-declared manifest gets
        its delegates without any code changes."""
        from repro import AndroidManifest

        class Nop:
            def main(self, api, intent):
                return None

        xml = (
            "<maxoid><private-intents mode='whitelist'>"
            "<filter action='android.intent.action.VIEW'/>"
            "</private-intents></maxoid>"
        )
        device.install(
            AndroidManifest(package="com.xml.app", maxoid=MaxoidManifest.from_xml(xml)),
            Nop(),
        )
        from repro.android.intents import IntentFilter

        device.install(
            AndroidManifest(
                package="com.xml.viewer", handles=[IntentFilter(actions=[Intent.ACTION_VIEW])]
            ),
            Nop(),
        )
        app = device.spawn("com.xml.app")
        invocation = device.am.start_activity(app.process, Intent(Intent.ACTION_VIEW))
        assert invocation.process.context.initiator == "com.xml.app"
