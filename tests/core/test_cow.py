"""COW proxy tests (paper section 5.2)."""

import pytest

from repro.errors import SqlNameError
from repro.core.cow import CowProxy, VOLATILE_PK_BASE, initiator_key

A = "com.dropbox.android"
B = "com.other.app"


@pytest.fixture
def proxy():
    p = CowProxy()
    p.create_table("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, freq INTEGER DEFAULT 1)")
    for word in ("alpha", "beta", "gamma"):
        p.insert("words", None, {"word": word})
    return p


class TestNames:
    def test_initiator_key_sanitizes(self):
        assert initiator_key("com.dropbox.android") == "com_dropbox_android"

    def test_delta_and_view_names(self, proxy):
        assert proxy.delta_name("words", A) == "words_delta_com_dropbox_android"
        assert proxy.view_name("words", A) == "words_view_com_dropbox_android"


class TestLazyMaterialization:
    def test_no_delta_until_first_write(self, proxy):
        assert not proxy.has_delta("words", A)
        assert proxy.resolve("words", A) == "words"  # shared copy

    def test_first_write_creates_machinery(self, proxy):
        proxy.update("words", A, {"word": "BETA"}, "word = ?", ["beta"])
        assert proxy.has_delta("words", A)
        assert proxy.resolve("words", A) == proxy.view_name("words", A)
        assert proxy.stats.delta_tables_created == 1

    def test_table_without_pk_rejected(self):
        p = CowProxy()
        with pytest.raises(SqlNameError):
            p.create_table("CREATE TABLE nokey (a TEXT, b TEXT)")

    def test_machinery_created_once(self, proxy):
        proxy.update("words", A, {"word": "x"}, "word = ?", ["beta"])
        proxy.insert("words", A, {"word": "y"})
        assert proxy.stats.delta_tables_created == 1


class TestCopyOnWriteSemantics:
    def test_update_confined(self, proxy):
        proxy.update("words", A, {"word": "BETA"}, "word = ?", ["beta"])
        assert [r[1] for r in proxy.query("words", A, order_by="_id").rows] == [
            "alpha", "BETA", "gamma",
        ]
        assert [r[1] for r in proxy.query("words", None, order_by="_id").rows] == [
            "alpha", "beta", "gamma",
        ]

    def test_insert_allocates_above_offset(self, proxy):
        row_id = proxy.insert("words", A, {"word": "new"})
        assert row_id == VOLATILE_PK_BASE

    def test_delete_is_whiteout(self, proxy):
        proxy.delete("words", A, "_id = 1")
        ids = [r[0] for r in proxy.query("words", A).rows]
        assert 1 not in ids
        assert 1 in [r[0] for r in proxy.query("words", None).rows]

    def test_update_then_delete_of_same_row(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 2")
        proxy.delete("words", A, "_id = 2")
        assert 2 not in [r[0] for r in proxy.query("words", A).rows]

    def test_per_initiator_isolation(self, proxy):
        proxy.update("words", A, {"word": "for-A"}, "_id = 1")
        proxy.update("words", B, {"word": "for-B"}, "_id = 1")
        a_word = dict((r[0], r[1]) for r in proxy.query("words", A).rows)[1]
        b_word = dict((r[0], r[1]) for r in proxy.query("words", B).rows)[1]
        assert (a_word, b_word) == ("for-A", "for-B")

    def test_shared_until_cow_then_frozen(self, proxy):
        """Unilateral per-name COW: after the delegate touches row 2, it
        stops seeing public updates to row 2, but still sees updates to
        other rows (paper 3.3)."""
        proxy.update("words", A, {"word": "mine"}, "_id = 2")
        proxy.update("words", None, {"word": "beta2"}, "_id = 2")
        proxy.update("words", None, {"word": "gamma2"}, "_id = 3")
        view = dict((r[0], r[1]) for r in proxy.query("words", A).rows)
        assert view[2] == "mine"      # frozen at the volatile copy
        assert view[3] == "gamma2"    # still tracking public updates


class TestVolatileManagement:
    def test_volatile_rows(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 1")
        proxy.delete("words", A, "_id = 2")
        visible = proxy.volatile_rows("words", A)
        everything = proxy.volatile_rows("words", A, include_whiteouts=True)
        assert len(visible.rows) == 1
        assert len(everything.rows) == 2

    def test_volatile_rows_empty_without_delta(self, proxy):
        assert proxy.volatile_rows("words", A).rows == []

    def test_insert_volatile_by_initiator(self, proxy):
        row_id = proxy.insert_volatile("words", A, {"word": "mine"})
        assert row_id >= VOLATILE_PK_BASE
        assert "mine" not in [r[1] for r in proxy.query("words", None).rows]
        assert "mine" in [r[1] for r in proxy.query("words", A).rows]

    def test_commit_volatile_update(self, proxy):
        proxy.update("words", A, {"word": "edited"}, "_id = 1")
        assert proxy.commit_volatile("words", A, 1)
        assert dict((r[0], r[1]) for r in proxy.query("words", None).rows)[1] == "edited"

    def test_commit_volatile_insert_gets_public_key(self, proxy):
        row_id = proxy.insert("words", A, {"word": "fresh"})
        assert proxy.commit_volatile("words", A, row_id)
        public = proxy.query("words", None).rows
        fresh = [r for r in public if r[1] == "fresh"]
        assert fresh and fresh[0][0] < VOLATILE_PK_BASE

    def test_commit_missing_row_returns_false(self, proxy):
        assert not proxy.commit_volatile("words", A, 12345)

    def test_discard_volatile(self, proxy):
        proxy.update("words", A, {"word": "junk"}, "_id = 1")
        assert proxy.discard_volatile("words", A) == 1
        assert [r[1] for r in proxy.query("words", A, order_by="_id").rows] == [
            "alpha", "beta", "gamma",
        ]

    def test_discard_all_volatile(self, proxy):
        proxy.create_table("CREATE TABLE extra (_id INTEGER PRIMARY KEY, v TEXT)")
        proxy.update("words", A, {"word": "j"}, "_id = 1")
        proxy.insert("extra", A, {"v": "k"})
        assert proxy.discard_all_volatile(A) == 2

    def test_initiators_with_volatile_state(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 1")
        proxy.update("words", B, {"word": "y"}, "_id = 2")
        assert sorted(proxy.initiators_with_volatile_state("words")) == sorted(
            [initiator_key(A), initiator_key(B)]
        )


class TestAdminView:
    def test_admin_rows_tag_states(self, proxy):
        proxy.update("words", A, {"word": "mine"}, "_id = 1")
        rows = proxy.admin_rows("words")
        states = sorted(set(r["_state"] for r in rows))
        assert states == ["public", f"vol:{initiator_key(A)}"]
        assert len(rows) == 4

    def test_admin_includes_whiteouts(self, proxy):
        proxy.delete("words", A, "_id = 1")
        rows = proxy.admin_rows("words")
        whiteouts = [r for r in rows if r["_whiteout"]]
        assert len(whiteouts) == 1


class TestUserViewHierarchy:
    @pytest.fixture
    def media(self):
        p = CowProxy()
        p.create_table(
            "CREATE TABLE files (_id INTEGER PRIMARY KEY, _data TEXT, media_type INTEGER, title TEXT)"
        )
        p.create_user_view("images", "SELECT _id, _data, title FROM files WHERE media_type = 1")
        p.create_user_view("small_images", "SELECT _id, title FROM images WHERE _id < 100")
        return p

    def test_view_resolves_to_original_without_deltas(self, media):
        assert media.resolve("images", A) == "images"

    def test_cow_hierarchy_created_on_demand(self, media):
        media.insert("files", A, {"_data": "/x", "media_type": 1, "title": "t"})
        assert media.resolve("small_images", A) == media.view_name("small_images", A)
        # files delta + files view + images cow + small_images cow
        assert media.stats.cow_views_created == 3

    def test_nested_view_shows_volatile_rows(self, media):
        media.insert("files", None, {"_data": "/pub", "media_type": 1, "title": "pub"})
        media.insert("files", A, {"_data": "/vol", "media_type": 1, "title": "vol"})
        titles = [r[1] for r in media.query("small_images", A).rows]
        assert titles == ["pub"]  # volatile id >= 10M fails _id < 100
        titles_all = sorted(r[2] for r in media.query("images", A).rows)
        assert titles_all == ["pub", "vol"]

    def test_user_views_not_writable(self, media):
        with pytest.raises(SqlNameError):
            media.resolve("images", A, for_write=True)


class TestOrderByWorkaround:
    def test_projection_widened_and_stripped(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 2")
        result = proxy.query("words", A, projection=["word"], order_by="_id DESC")
        assert result.columns == ["word"]
        assert proxy.stats.order_by_workarounds == 1
        assert [r[0] for r in result.rows][-1] == "alpha"

    def test_no_workaround_for_public_queries(self, proxy):
        proxy.query("words", None, projection=["word"], order_by="_id")
        assert proxy.stats.order_by_workarounds == 0

    def test_no_workaround_when_order_column_projected(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 2")
        proxy.query("words", A, projection=["word", "_id"], order_by="_id")
        assert proxy.stats.order_by_workarounds == 0

    def test_flattening_preserved_by_workaround(self, proxy):
        proxy.update("words", A, {"word": "x"}, "_id = 2")
        proxy.db.stats.reset()
        proxy.query("words", A, projection=["word"], order_by="_id")
        assert proxy.db.stats.flattened_queries == 1
        assert proxy.db.stats.materialized_views == 0
