"""Device facade and audit-module tests."""

import pytest

from repro.errors import IpcDenied
from repro import AndroidManifest, Device
from repro.core.audit import (
    audit_observer,
    find_marker_in_files,
    leaked_off_device,
    readable_files,
)

A = "com.dev.a"
B = "com.dev.b"


class Nop:
    def main(self, api, intent):
        return None


@pytest.fixture
def env(device):
    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


class TestDeviceFacade:
    def test_spawn_contexts(self, env):
        assert not env.spawn(A).is_delegate
        assert env.spawn(B, initiator=A).is_delegate

    def test_mount_table_rendering(self, env):
        delegate = env.spawn(B, initiator=A)
        table = env.mount_table_for(delegate.process)
        assert any("/storage/sdcard" in line for line in table)

    def test_clear_volatile_counts_across_stores(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("x.txt", b"1")
        from repro.android.content.provider import ContentValues
        from repro.android.uri import Uri

        delegate.insert(Uri.content("user_dictionary", "words"), ContentValues({"word": "w"}))
        assert env.clear_volatile(A) == 2

    def test_api_for_existing_process(self, env):
        process = env.zygote.fork_app(A)
        api = env.api_for(process)
        assert api.package == A

    def test_app_registry(self, env):
        app = Nop()
        env.install(AndroidManifest(package="com.dev.c"), app)
        assert env.app("com.dev.c") is app

    def test_maxoid_service_scopes_to_caller(self, env):
        """An app can clear only its own state via the maxoid service."""
        a = env.spawn(A)
        with pytest.raises(IpcDenied):
            env.binder.transact(a.process, "maxoid", "clear_volatile", {"package": B})
        # Its own state is fine.
        assert env.binder.transact(a.process, "maxoid", "clear_volatile", {}) == 0

    def test_delegate_may_not_clear_state(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(IpcDenied):
            env.binder.transact(delegate.process, "maxoid", "clear_volatile", {})

    def test_stock_device_has_no_maxoid_mounts(self, stock_device):
        stock_device.install(AndroidManifest(package=A), Nop())
        api = stock_device.spawn(A)
        assert api.process.namespace.mount_points() == ["/", "/storage/sdcard"]


class TestAudit:
    def test_readable_files_respects_views(self, env):
        a = env.spawn(A)
        a.write_external("pub.txt", b"public")
        a.write_internal("priv.txt", b"private")
        b = env.spawn(B)
        files = readable_files(b)
        assert "/storage/sdcard/pub.txt" in files
        assert f"/data/data/{A}/priv.txt" not in files

    def test_find_marker(self, env):
        a = env.spawn(A)
        a.write_external("note.txt", b"xx MARKER-123 yy")
        hits = find_marker_in_files(env.spawn(B), b"MARKER-123")
        assert hits == ["/storage/sdcard/note.txt"]

    def test_audit_observer_clean(self, env):
        report = audit_observer(env.spawn(B), b"MARKER-xyz")
        assert report.clean
        assert report.observer == B

    def test_audit_observer_detects_clipboard(self, env):
        env.spawn(A).clipboard_set("contains MARKER-clip here")
        report = audit_observer(env.spawn(B), b"MARKER-clip")
        assert report.clipboard_hit
        assert not report.clean

    def test_audit_observer_detects_provider_rows(self, env):
        from repro.android.content.provider import ContentValues
        from repro.android.uri import Uri

        env.spawn(A).insert(
            Uri.content("user_dictionary", "words"), ContentValues({"word": "MARKER-word"})
        )
        report = audit_observer(env.spawn(B), b"MARKER-word")
        assert report.provider_hits

    def test_leaked_off_device_via_sms(self, stock_device):
        stock_device.install(AndroidManifest(package=A), Nop())
        api = stock_device.spawn(A)
        api.send_sms("+1", "the MARKER-sms content")
        assert leaked_off_device(stock_device, b"MARKER-sms")

    def test_leaked_off_device_via_bluetooth(self, stock_device):
        stock_device.install(AndroidManifest(package=A), Nop())
        api = stock_device.spawn(A)
        api.bluetooth_send("dev", b"MARKER-bt payload")
        assert leaked_off_device(stock_device, b"MARKER-bt")

    def test_nothing_leaked_on_fresh_device(self, env):
        assert not leaked_off_device(env, b"MARKER-none")


class TestAuditLog:
    """The fault/recovery post-mortem log (crash-sweep satellite)."""

    def test_record_and_render(self):
        from repro.core.audit import AuditLog

        log = AuditLog()
        log.record("recovery", "replayed file commit", destination="/x")
        assert len(log) == 1
        line = log.render()
        assert "recovery: replayed file commit" in line and "'/x'" in line

    def test_ingest_faults_is_idempotent(self):
        import pytest as _pytest

        from repro.core.audit import AuditLog
        from repro.errors import InjectedFault
        from repro.faults import FaultPlane, fail_nth

        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(1))
        with _pytest.raises(InjectedFault):
            plane.hit("vfs.write", path="/p")
        log = AuditLog()
        assert log.ingest_faults(plane) == 1
        assert log.ingest_faults(plane) == 0  # same entries skipped
        (event,) = log.events("fault")
        assert event.details["point"] == "vfs.write"
        assert event.details["path"] == "/p"

    def test_device_recovery_actions_are_audited(self, env):
        delegate = env.spawn(B, initiator=A)
        delegate.write_external("doc.txt", b"payload")
        import pytest as _pytest

        from repro.faults import FAULTS, SimulatedCrash, crash_at

        FAULTS.arm("vol.commit.apply", crash_at())
        with _pytest.raises(SimulatedCrash):
            env.spawn(A).volatile.commit("/storage/sdcard/tmp/doc.txt")
        env.recover(validate=False)
        categories = {e.category for e in env.audit_log.events()}
        assert categories == {"fault", "recovery"}
        messages = " / ".join(e.message for e in env.audit_log.events())
        assert "crash at vol.commit.apply" in messages
        assert "replayed file commit" in messages
