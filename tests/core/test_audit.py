"""Unit tests for the AuditLog itself: ordering, category filtering, and
the violation-with-lineage round trip.

The integration suites exercise the log through recover() and the
security monitor; these tests pin its contract directly so a change to
sequencing or serialisation fails close to the cause.
"""

import pytest

from repro.core.audit import AuditEvent, AuditLog

pytestmark = pytest.mark.faults


def test_sequence_numbers_are_monotonic_across_categories():
    log = AuditLog()
    log.record("fault", "first")
    log.record("recovery", "second")
    log.record_violation("S1", "third")
    seqs = [e.seq for e in log.events()]
    assert seqs == sorted(seqs) == [1, 2, 3]
    assert len(log) == 3


def test_events_filters_by_category_and_preserves_order():
    log = AuditLog()
    log.record("fault", "f1")
    log.record("recovery", "r1")
    log.record("fault", "f2")
    log.record_violation("S3", "v1")
    assert [e.message for e in log.events("fault")] == ["f1", "f2"]
    assert [e.message for e in log.events("recovery")] == ["r1"]
    assert [e.message for e in log.violations()] == ["v1"]
    assert [e.message for e in log.events()] == ["f1", "r1", "f2", "v1"]


def test_record_violation_keeps_rule_lineage_and_extra_details():
    log = AuditLog()
    chain = ["vol(a) /sdcard/x", "vfs.read of /data/data/a/doc", "source Priv(a)"]
    event = log.record_violation(
        "S1", "delegate touched foreign priv", lineage=chain, span="vfs.read",
        ctx="b^a",
    )
    assert event.category == "violation"
    assert event.details["rule"] == "S1"
    assert event.details["lineage"] == chain
    assert event.details["lineage"] is not chain  # defensive copy
    assert event.details["span"] == "vfs.read"
    assert event.details["ctx"] == "b^a"


def test_violation_round_trips_through_dict():
    log = AuditLog()
    original = log.record_violation(
        "S4", "wrote into Priv(x)", lineage=["step one", "source Priv(x)"],
        span="vfs.write",
    )
    data = original.to_dict()
    restored = AuditEvent.from_dict(data)
    assert restored == original
    # The dict form is detached from the live event.
    data["details"]["lineage"].append("tampered")
    assert original.details["lineage"] == ["step one", "source Priv(x)"]


def test_render_includes_seq_category_and_details():
    log = AuditLog()
    log.record("recovery", "replayed journal", table="words", entries=3)
    log.record_violation("S2", "foreign writable root")
    text = log.render()
    lines = text.splitlines()
    assert lines[0].startswith("[device0:0001] recovery: replayed journal")
    assert "entries=3" in lines[0] and "table='words'" in lines[0]
    assert lines[1].startswith("[device0:0002] violation: foreign writable root")
    assert "rule='S2'" in lines[1]


def test_device_id_is_stamped_and_round_trips_through_dict():
    log = AuditLog(device_id="tablet7")
    event = log.record_violation("S1", "cross-view read", lineage=["a", "b"])
    assert event.device_id == "tablet7"
    assert event.seq == 1
    data = event.to_dict()
    assert data["device_id"] == "tablet7"
    restored = AuditEvent.from_dict(data)
    assert restored == event
    assert restored.device_id == "tablet7"
    # Legacy dicts without the field default to device0.
    del data["device_id"]
    assert AuditEvent.from_dict(data).device_id == "device0"
    # The render prefix carries the device for merged-feed readability.
    assert log.render().startswith("[tablet7:0001]")


def test_seq_is_monotonic_per_device_log():
    log_a = AuditLog(device_id="a")
    log_b = AuditLog(device_id="b")
    for _ in range(3):
        log_a.record("fault", "x")
        log_b.record("fault", "y")
    assert [e.seq for e in log_a.events()] == [1, 2, 3]
    assert [e.seq for e in log_b.events()] == [1, 2, 3]
    merged = sorted(
        log_a.events() + log_b.events(), key=lambda e: (e.seq, e.device_id)
    )
    assert [(e.seq, e.device_id) for e in merged] == [
        (1, "a"), (1, "b"), (2, "a"), (2, "b"), (3, "a"), (3, "b"),
    ]


def test_ingest_faults_skips_already_seen_entries():
    class _Plane:
        injection_log = [
            {"seq": 1, "outcome": "crash", "point": "cow.commit", "hit": 1,
             "policy": "once", "ctx": {"table": "words"}},
            {"seq": 2, "outcome": "error", "point": "vfs.write", "hit": 3},
        ]

    log = AuditLog()
    assert log.ingest_faults(_Plane()) == 2
    assert log.ingest_faults(_Plane()) == 0  # idempotent re-ingest
    faults = log.events("fault")
    assert len(faults) == 2
    assert faults[0].details["point"] == "cow.commit"
    assert faults[0].details["table"] == "words"


def test_clear_resets_sequence_and_ingest_memory():
    class _Plane:
        injection_log = [{"seq": 7, "outcome": "crash", "point": "p", "hit": 1}]

    log = AuditLog()
    log.ingest_faults(_Plane())
    log.record_violation("S1", "x")
    log.clear()
    assert len(log) == 0 and log.events() == []
    fresh = log.record("recovery", "post-clear")
    assert fresh.seq == 1
    assert log.ingest_faults(_Plane()) == 1  # seen-set was cleared too
