"""The trusted-cloud extension (paper section 2.4's πBox sketch).

By default delegates lose the network entirely. With the extension, a
delegate may reach its own app's registered backend — and everything it
sends or fetches there is confined to its initiator's domain, server-side.
"""

import pytest

from repro.errors import FileNotFound, NetworkUnreachable
from repro import AndroidManifest

A = "com.cloud.initiator"
B = "com.cloud.helper"
BACKEND = "api.helper.example"


@pytest.fixture
def env(device):
    class Nop:
        def main(self, api, intent):
            return None

    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    device.network.add_host(BACKEND)
    return device


class TestDefaultBehaviour:
    def test_without_extension_delegates_have_no_network(self, env):
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(NetworkUnreachable):
            delegate.connect(BACKEND)


class TestTrustedCloud:
    def test_delegate_reaches_own_backend_only(self, env):
        cloud = env.network.enable_trusted_cloud()
        cloud.register_backend(B, BACKEND)
        delegate = env.spawn(B, initiator=A)
        socket = delegate.connect(BACKEND)
        assert socket is not None
        # Any other host remains unreachable.
        env.network.add_host("other.example")
        with pytest.raises(NetworkUnreachable):
            delegate.connect("other.example")

    def test_backend_registration_is_per_app(self, env):
        cloud = env.network.enable_trusted_cloud()
        cloud.register_backend("com.unrelated.app", BACKEND)
        delegate = env.spawn(B, initiator=A)
        with pytest.raises(NetworkUnreachable):
            delegate.connect(BACKEND)

    def test_sends_are_domain_confined_not_public_egress(self, env):
        cloud = env.network.enable_trusted_cloud()
        cloud.register_backend(B, BACKEND)
        delegate = env.spawn(B, initiator=A)
        socket = delegate.connect(BACKEND)
        socket.send(b"SECRET-FROM-PRIV-A")
        # Not in the public leak-audit surface...
        assert not env.network.leaked_to_network(b"SECRET-FROM-PRIV-A")
        # ...but recorded in the (host, domain) store.
        assert cloud.domain_received(BACKEND, A, b"SECRET-FROM-PRIV-A")

    def test_domains_are_isolated_server_side(self, env):
        class Nop:
            def main(self, api, intent):
                return None

        env.install(AndroidManifest(package="com.cloud.other"), Nop())
        cloud = env.network.enable_trusted_cloud()
        cloud.register_backend(B, BACKEND)
        for_a = env.spawn(B, initiator=A)
        for_a.connect(BACKEND).put("draft.txt", b"domain-A data")
        for_other = env.spawn(B, initiator="com.cloud.other")
        with pytest.raises(FileNotFound):
            for_other.connect(BACKEND).fetch("draft.txt")
        # The same domain reads its own data back.
        again_for_a = env.spawn(B, initiator=A)
        assert again_for_a.connect(BACKEND).fetch("draft.txt") == b"domain-A data"

    def test_initiators_unaffected_by_extension(self, env):
        env.network.enable_trusted_cloud()
        env.network.publish(BACKEND, "page", b"hello")
        api = env.spawn(B)  # running normally
        assert api.connect(BACKEND).fetch("page") == b"hello"
