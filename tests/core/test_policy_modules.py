"""Manifest, IPC guard, netguard, volatile files, pPriv, context tests."""

import pytest

from repro.errors import DelegateNetworkDenied, IpcDenied, NestedDelegationError
from repro.android.intents import Intent, IntentFilter
from repro.core.context import MaxoidContextApi, delegate_key, same_confinement_domain
from repro.core.ipc_guard import IpcGuard
from repro.core.manifest import MaxoidManifest
from repro.core.netguard import assert_not_delegate, network_allowed
from repro.core.volatile import VolatileFiles
from repro.kernel.binder import BinderDriver, BinderEndpoint
from repro.kernel.proc import TaskContext
from repro import AndroidManifest


class TestMaxoidManifest:
    def test_private_ext_path_matching(self):
        manifest = MaxoidManifest(private_ext_dirs=["Dropbox", "data/sync"])
        assert manifest.is_private_ext_path("Dropbox/file.pdf")
        assert manifest.is_private_ext_path("data/sync/deep/x")
        assert not manifest.is_private_ext_path("DropboxOther/file")
        assert not manifest.is_private_ext_path("Download/x")

    def test_whitelist_mode(self):
        manifest = MaxoidManifest(
            private_filters=[IntentFilter(actions=[Intent.ACTION_VIEW])]
        )
        assert manifest.intent_is_private(Intent(Intent.ACTION_VIEW))
        assert not manifest.intent_is_private(Intent(Intent.ACTION_SEND))

    def test_blacklist_mode(self):
        manifest = MaxoidManifest(
            private_filters=[IntentFilter(actions=[Intent.ACTION_SEND])],
            filter_mode="blacklist",
        )
        assert manifest.intent_is_private(Intent(Intent.ACTION_VIEW))
        assert not manifest.intent_is_private(Intent(Intent.ACTION_SEND))

    def test_blacklist_of_nothing_makes_everything_private(self):
        manifest = MaxoidManifest(filter_mode="blacklist")
        assert manifest.intent_is_private(Intent("anything"))

    def test_bad_filter_mode_rejected(self):
        with pytest.raises(ValueError):
            MaxoidManifest(filter_mode="greylist")

    def test_dirs_normalized(self):
        manifest = MaxoidManifest(private_ext_dirs=["/Dropbox/"])
        assert manifest.private_ext_dirs == ["Dropbox"]


class TestContextHelpers:
    def test_delegate_key(self):
        assert delegate_key("B", "A") == "B@A"

    def test_same_confinement_domain(self):
        a = TaskContext(app="A")
        b_for_a = TaskContext(app="B", initiator="A")
        c_for_a = TaskContext(app="C", initiator="A")
        b_for_x = TaskContext(app="B", initiator="X")
        assert same_confinement_domain(a, b_for_a)
        assert same_confinement_domain(b_for_a, c_for_a)
        assert not same_confinement_domain(b_for_a, b_for_x)
        assert not same_confinement_domain(a, TaskContext(app="B"))


class TestIpcGuardDecisions:
    def test_initiator_plain_intent_is_normal(self):
        context = TaskContext(app="A")
        assert IpcGuard.decide_initiator(context, Intent("x"), None) is None

    def test_initiator_flag_makes_delegate(self):
        context = TaskContext(app="A")
        intent = Intent("x", flags=Intent.FLAG_MAXOID_DELEGATE)
        assert IpcGuard.decide_initiator(context, intent, None) == "A"

    def test_manifest_filters_consulted(self):
        context = TaskContext(app="A")
        manifest = MaxoidManifest(private_filters=[IntentFilter(actions=["x"])])
        assert IpcGuard.decide_initiator(context, Intent("x"), manifest) == "A"
        assert IpcGuard.decide_initiator(context, Intent("y"), manifest) is None

    def test_transitivity(self):
        delegate = TaskContext(app="B", initiator="A")
        assert IpcGuard.decide_initiator(delegate, Intent("x"), None) == "A"

    def test_nested_delegation_raises(self):
        delegate = TaskContext(app="B", initiator="A")
        intent = Intent("x", flags=Intent.FLAG_MAXOID_DELEGATE)
        with pytest.raises(NestedDelegationError):
            IpcGuard.decide_initiator(delegate, intent, None)


class TestBinderPolicy:
    @pytest.fixture
    def guard(self):
        return IpcGuard(BinderDriver())

    def endpoint(self, name, owner=None, is_system=False):
        return BinderEndpoint(name=name, owner=owner, handler=lambda t: None, is_system=is_system)

    def test_system_endpoints_always_allowed(self, guard):
        delegate = TaskContext(app="B", initiator="A")
        assert guard.binder_policy(delegate, self.endpoint("svc", is_system=True))

    def test_non_delegates_unrestricted(self, guard):
        normal = TaskContext(app="B")
        assert guard.binder_policy(normal, self.endpoint("app:1", owner="C"))

    def test_delegate_to_initiator_instance_allowed(self, guard):
        guard.register_instance("app:1", TaskContext(app="A"))
        delegate = TaskContext(app="B", initiator="A")
        assert guard.binder_policy(delegate, self.endpoint("app:1", owner="A"))

    def test_delegate_to_sibling_delegate_allowed(self, guard):
        guard.register_instance("app:2", TaskContext(app="C", initiator="A"))
        delegate = TaskContext(app="B", initiator="A")
        assert guard.binder_policy(delegate, self.endpoint("app:2", owner="C"))

    def test_delegate_to_outsider_denied(self, guard):
        guard.register_instance("app:3", TaskContext(app="C"))
        delegate = TaskContext(app="B", initiator="A")
        assert not guard.binder_policy(delegate, self.endpoint("app:3", owner="C"))

    def test_delegate_to_unknown_endpoint_denied(self, guard):
        delegate = TaskContext(app="B", initiator="A")
        assert not guard.binder_policy(delegate, self.endpoint("app:ghost", owner="C"))

    def test_unregister_closes_access(self, guard):
        guard.register_instance("app:1", TaskContext(app="A"))
        guard.unregister_instance("app:1")
        delegate = TaskContext(app="B", initiator="A")
        assert not guard.binder_policy(delegate, self.endpoint("app:1", owner="A"))

    def test_broadcast_scoping(self, guard):
        delegate = TaskContext(app="B", initiator="A")
        assert guard.broadcast_visible(delegate, TaskContext(app="A"))
        assert guard.broadcast_visible(delegate, TaskContext(app="C", initiator="A"))
        assert not guard.broadcast_visible(delegate, TaskContext(app="C"))
        assert guard.broadcast_visible(TaskContext(app="A"), TaskContext(app="C"))


class TestNetguard:
    def test_network_allowed_rule(self):
        assert network_allowed(TaskContext(app="A"))
        assert not network_allowed(TaskContext(app="B", initiator="A"))

    def test_assert_not_delegate(self):
        assert_not_delegate(TaskContext(app="A"), "sms")
        with pytest.raises(DelegateNetworkDenied):
            assert_not_delegate(TaskContext(app="B", initiator="A"), "sms")


class TestVolatileFilesApi:
    def test_delegates_have_no_volatile_window(self, device):
        class Nop:
            def main(self, api, intent):
                return None

        device.install(AndroidManifest(package="com.a"), Nop())
        device.install(AndroidManifest(package="com.b"), Nop())
        delegate = device.spawn("com.b", initiator="com.a")
        with pytest.raises(IpcDenied):
            VolatileFiles(delegate.process)

    def test_commit_external(self, device):
        class Nop:
            def main(self, api, intent):
                return None

        device.install(AndroidManifest(package="com.a"), Nop())
        device.install(AndroidManifest(package="com.b"), Nop())
        delegate = device.spawn("com.b", initiator="com.a")
        delegate.write_external("out/result.txt", b"edited")
        a = device.spawn("com.a")
        committed = a.volatile.commit("/storage/sdcard/tmp/out/result.txt")
        assert committed == "/storage/sdcard/out/result.txt"
        assert device.spawn("com.b").sys.read_file(committed) == b"edited"

    def test_commit_internal(self, device):
        class Nop:
            def main(self, api, intent):
                return None

        device.install(AndroidManifest(package="com.a"), Nop())
        device.install(AndroidManifest(package="com.b"), Nop())
        delegate = device.spawn("com.b", initiator="com.a")
        delegate.sys.makedirs("/data/data/com.a/results")
        delegate.sys.write_file("/data/data/com.a/results/r.txt", b"output")
        a = device.spawn("com.a")
        committed = a.volatile.commit("/data/data/com.a/tmp/results/r.txt")
        assert committed == "/data/data/com.a/results/r.txt"
        assert a.sys.read_file(committed) == b"output"

    def test_commit_non_tmp_path_raises(self, device):
        class Nop:
            def main(self, api, intent):
                return None

        device.install(AndroidManifest(package="com.a"), Nop())
        a = device.spawn("com.a")
        from repro.errors import FileNotFound

        with pytest.raises(FileNotFound):
            a.volatile.commit("/storage/sdcard/other/file")

    def test_maxoid_context_api(self, device):
        class Nop:
            def main(self, api, intent):
                return None

        device.install(AndroidManifest(package="com.a"), Nop())
        device.install(AndroidManifest(package="com.b"), Nop())
        normal = device.spawn("com.b")
        assert not MaxoidContextApi(normal.process).is_delegate()
        assert MaxoidContextApi(normal.process).initiator() is None
        delegate = device.spawn("com.b", initiator="com.a")
        assert MaxoidContextApi(delegate.process).is_delegate()
        assert MaxoidContextApi(delegate.process).initiator() == "com.a"
