"""Determinism lint: planted nondeterminism fixture and the live tree."""

from __future__ import annotations

import pytest

from repro.analysis.determinism import check_determinism

from .fixtures import NONDET, build_fixture
from .conftest import BASELINE_PATH

import json

pytestmark = [pytest.mark.analysis]


@pytest.fixture()
def findings(tmp_path):
    index = build_fixture(tmp_path, "mod", NONDET)
    return check_determinism(index)


class TestPlantedFixture:
    def test_every_rule_fires_once(self, findings):
        by_symbol = {(f.rule, f.symbol) for f in findings}
        assert ("wall-clock", "bad_clock") in by_symbol
        assert ("wall-clock", "bad_now") in by_symbol
        assert ("unseeded-random", "bad_unseeded") in by_symbol
        assert ("global-random", "bad_global_random") in by_symbol
        assert ("entropy", "bad_entropy") in by_symbol
        assert ("set-iteration-digest", "bad_digest") in by_symbol

    def test_compliant_twins_stay_clean(self, findings):
        flagged = {f.symbol for f in findings}
        assert "good_seeded" not in flagged
        assert "good_digest" not in flagged

    def test_all_errors(self, findings):
        assert all(f.severity == "error" for f in findings)


class TestLiveTree:
    def test_only_baselined_wall_clock_remains(self, tree_index):
        """The tree's sole ambient-nondeterminism uses are the documented
        host-profiling perf_counter reads, all baselined."""
        findings = check_determinism(tree_index)
        assert all(f.rule == "wall-clock" for f in findings), [
            f.render() for f in findings if f.rule != "wall-clock"
        ]
        baselined = {
            entry["fingerprint"]
            for entry in json.loads(BASELINE_PATH.read_text())["suppressions"]
        }
        unbaselined = [f for f in findings if f.fingerprint not in baselined]
        assert unbaselined == [], "\n".join(f.render() for f in unbaselined)

    def test_simulation_core_is_fully_deterministic(self, tree_index):
        """No determinism finding at all inside kernel/core/sched/fuzz —
        the baseline only ever covers the profiling layers."""
        findings = check_determinism(tree_index)
        core_hits = [
            f
            for f in findings
            if f.module.startswith(
                ("repro.kernel", "repro.core", "repro.sched", "repro.fuzz")
            )
        ]
        assert core_hits == [], "\n".join(f.render() for f in core_hits)
