"""Static lockset race detector: planted fixture and the live tree."""

from __future__ import annotations

import pytest

from repro.analysis.locksets import (
    KNOWN_RACES,
    SharedClass,
    check_locksets,
    collect_accesses,
    mutable_attrs,
)

from .fixtures import RACY, build_fixture

pytestmark = [pytest.mark.analysis]

FIXTURE_SINGLETONS = (SharedClass("fixturepkg.mod", "RacyGuard"),)


@pytest.fixture()
def index(tmp_path):
    return build_fixture(tmp_path, "mod", RACY)


class TestPlantedFixture:
    def test_mutable_attrs_discovered_from_init(self, index):
        module = index.modules["fixturepkg.mod"]
        assert mutable_attrs(module, "RacyGuard") == {
            "_registry",
            "_audit",
            "_locked_table",
        }

    def test_unlocked_registry_rebuild_is_reported(self, index):
        findings = check_locksets(index, FIXTURE_SINGLETONS)
        racy = [f for f in findings if f.symbol == "RacyGuard._registry"]
        assert len(racy) == 1
        (finding,) = racy
        assert finding.rule == "lockset-race"
        entries = finding.datum("entries", "")
        assert "RacyGuard.decide" in entries and "RacyGuard.rebuild" in entries

    def test_lock_protected_table_is_not_reported(self, index):
        """locked_put/locked_get share the rwlock; the scheduler-off
        fallback write in fallback_put must not resurrect the pair."""
        findings = check_locksets(index, FIXTURE_SINGLETONS)
        assert not any(f.symbol == "RacyGuard._locked_table" for f in findings)

    def test_write_free_resources_are_not_reported(self, index):
        """_audit is written from one entry point and read from none —
        no pair, no finding."""
        findings = check_locksets(index, FIXTURE_SINGLETONS)
        assert not any(f.symbol == "RacyGuard._audit" for f in findings)

    def test_locksets_are_computed_per_access(self, index):
        accesses = collect_accesses(index, FIXTURE_SINGLETONS)
        by_entry = {
            (a.entry, a.attr): a.locks
            for a in accesses
            if a.attr == "_locked_table"
        }
        assert by_entry[("RacyGuard.locked_put", "_locked_table")] == {
            "RacyGuard.lock"
        }
        assert by_entry[("RacyGuard.locked_get", "_locked_table")] == {
            "RacyGuard.lock"
        }


class TestLiveTree:
    def test_planted_binder_guard_race_is_the_positive_control(self, tree_index):
        """The pass must statically find the planted TOCTOU and tag it
        with its bug-mode name and dynamic resource annotation."""
        findings = check_locksets(tree_index)
        control = [f for f in findings if f.symbol == "IpcGuard._instance_contexts"]
        assert len(control) == 1
        (finding,) = control
        assert finding.datum("planted") == "binder-guard-race"
        assert finding.datum("dynamic_resource") == "guard-registry"
        entries = finding.datum("entries", "")
        assert "IpcGuard.register_instance" in entries
        assert "IpcGuard.binder_policy" in entries

    def test_known_races_registry_matches_the_tree(self, tree_index):
        findings = {f.symbol for f in check_locksets(tree_index)}
        for (cls, attr), (planted, _resource) in KNOWN_RACES.items():
            assert f"{cls}.{attr}" in findings, (
                f"KNOWN_RACES expects {planted} at {cls}.{attr} but the "
                "lockset pass no longer reports it"
            )

    def test_locked_mount_mutations_carry_the_ns_lock(self, tree_index):
        accesses = collect_accesses(tree_index)
        mount_writes = [
            a
            for a in accesses
            if a.entry == "MountNamespace.mount" and a.attr == "_mounts" and a.rw == "w"
        ]
        assert mount_writes, "MountNamespace.mount write not observed"
        assert all("MountNamespace.rwlock" in a.locks for a in mount_writes)
