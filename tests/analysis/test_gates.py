"""Gate-coverage linter: planted fixtures and the live tree."""

from __future__ import annotations

import pytest

from repro.analysis.gates import (
    GATE_REGISTRY,
    GateRule,
    QUARTET,
    TAP_REGISTRY,
    TapRule,
    check_gates,
    check_recorder_taps,
    detect_members,
)

from .fixtures import (
    GATED_BARE,
    GATED_OK,
    TAPPED_OK,
    TAPPED_SILENT,
    build_fixture,
    gated_missing,
)

pytestmark = [pytest.mark.analysis]


def _registry(cls: str) -> tuple:
    return (
        GateRule(
            module="fixturepkg.mod",
            cls=cls,
            method="write",
            requires=QUARTET,
        ),
    )


class TestPlantedFixtures:
    def test_full_quartet_detected_through_helper_chain(self, tmp_path):
        """obs lives in the public method, faults+sched one helper down,
        prov two helpers down — the inliner must see all four."""
        index = build_fixture(tmp_path, "mod", GATED_OK)
        fn = index.function("fixturepkg.mod", "GoodGate.write")
        assert detect_members(index, fn) == set(QUARTET)
        assert check_gates(index, _registry("GoodGate")) == []

    def test_bare_boundary_reports_all_four(self, tmp_path):
        index = build_fixture(tmp_path, "mod", GATED_BARE)
        findings = check_gates(index, _registry("BareGate"))
        assert {f.rule for f in findings} == {f"missing-{m}" for m in QUARTET}
        assert all(f.severity == "error" for f in findings)
        assert all(f.symbol == "BareGate.write" for f in findings)
        # file:line points at the offending method.
        assert all(f.file.endswith("mod.py") and f.line > 1 for f in findings)

    @pytest.mark.parametrize("member", QUARTET)
    def test_each_member_detected_in_isolation(self, tmp_path, member):
        """Removing exactly one member yields exactly that finding."""
        index = build_fixture(tmp_path, "mod", gated_missing(member))
        findings = check_gates(index, _registry("OneGate"))
        assert [f.rule for f in findings] == [f"missing-{member}"]

    def test_registry_drift_is_a_finding(self, tmp_path):
        index = build_fixture(tmp_path, "mod", GATED_OK)
        ghost = (
            GateRule(
                module="fixturepkg.mod",
                cls="GoodGate",
                method="renamed_away",
                requires=("obs",),
            ),
        )
        findings = check_gates(index, ghost)
        assert [f.rule for f in findings] == ["unresolved-boundary"]


def _tap_registry(cls: str) -> tuple:
    return (TapRule(module="fixturepkg.mod", cls=cls, method="record"),)


class TestTapFixtures:
    def test_fanout_detected_through_helper(self, tmp_path):
        index = build_fixture(tmp_path, "mod", TAPPED_OK)
        assert check_recorder_taps(index, _tap_registry("TappedPlane")) == []

    def test_silent_plane_is_a_finding(self, tmp_path):
        index = build_fixture(tmp_path, "mod", TAPPED_SILENT)
        findings = check_recorder_taps(index, _tap_registry("SilentPlane"))
        assert [f.rule for f in findings] == ["missing-tap-fanout"]
        assert findings[0].severity == "error"
        assert findings[0].symbol == "SilentPlane.record"
        assert findings[0].file.endswith("mod.py") and findings[0].line > 1

    def test_tap_registry_drift_is_a_finding(self, tmp_path):
        index = build_fixture(tmp_path, "mod", TAPPED_OK)
        ghost = (
            TapRule(
                module="fixturepkg.mod", cls="TappedPlane", method="renamed_away"
            ),
        )
        findings = check_recorder_taps(index, ghost)
        assert [f.rule for f in findings] == ["unresolved-tap-site"]

    def test_default_gate_run_folds_in_the_tap_contract(self, tmp_path):
        """``check_gates`` with the default registry also proves the
        recorder taps; custom registries (these fixtures) do not."""
        index = build_fixture(tmp_path, "mod", TAPPED_OK)
        rules = {f.rule for f in check_gates(index)}
        assert "unresolved-tap-site" in rules
        assert check_gates(index, registry=()) == []


class TestLiveTree:
    @pytest.fixture(scope="class")
    def index(self, tree_index):
        return tree_index

    def test_every_registered_boundary_resolves(self, index):
        unresolved = [
            f for f in check_gates(index) if f.rule == "unresolved-boundary"
        ]
        assert unresolved == [], [f.symbol for f in unresolved]

    def test_tree_is_gate_clean(self, index):
        findings = check_gates(index)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_recorder_tap_site_fans_out(self, index):
        findings = check_recorder_taps(index)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tap_registry_covers_every_recorder_plane(self):
        # One tap site per plane FlightRecorder.arm() attaches to.
        assert {rule.qualname for rule in TAP_REGISTRY} == {
            "Tracer._finish",
            "FaultPlane.hit",
            "AuditLog.record",
            "DeterministicScheduler._loop",
            "RWLock._acquire",
        }

    def test_registry_spans_the_kernel_layers(self):
        layers = {rule.module.rsplit(".", 2)[-2] for rule in GATE_REGISTRY}
        # syscall/mounts/aufs/binder (kernel), am/zygote/services (android),
        # cow/volatile (core), minisql.
        assert len(GATE_REGISTRY) >= 20
        assert {"kernel", "android", "core", "minisql", "services"} <= layers
