"""Planted-defect fixture sources for the static-analysis tests.

Each fixture is written to a temp package and indexed with
:meth:`CodeIndex.build` — the analysis never imports them, so the code
only has to parse, not run.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.ir import CodeIndex

#: A kernel-style boundary carrying the full quartet, split across the
#: ``public -> _impl -> _body`` helper chain the inliner must follow.
GATED_OK = '''
from fake import FAULTS as _FAULTS, SCHED as _SCHED


class GoodGate:
    def write(self, path, data):
        if self.obs.enabled:
            with self.obs.tracer.span("good.write", path=path):
                self.obs.metrics.count("good.writes")
                return self._write_impl(path, data)
        return self._write_impl(path, data)

    def _write_impl(self, path, data):
        if _FAULTS.enabled:
            _FAULTS.hit("good.write", path=path)
        if _SCHED.enabled:
            _SCHED.yield_point("good.write", resource=path, rw="w")
        return self._write_body(path, data)

    def _write_body(self, path, data):
        self.store[path] = data
        if self.obs.prov:
            self.obs.provenance.file_write(path)
        return len(data)
'''

#: The same boundary with every quartet member removed.
GATED_BARE = '''
class BareGate:
    def write(self, path, data):
        self.store[path] = data
        return len(data)
'''

#: One member missing at a time (the other three present).
def gated_missing(member: str) -> str:
    lines = {
        "obs": (
            "        if self.obs.enabled:\n"
            "            with self.obs.tracer.span('one.write'):\n"
            "                self.obs.metrics.count('one.writes')\n"
        ),
        "faults": (
            "        if _FAULTS.enabled:\n"
            "            _FAULTS.hit('one.write', path=path)\n"
        ),
        "sched": (
            "        if _SCHED.enabled:\n"
            "            _SCHED.yield_point('one.write', resource=path, rw='w')\n"
        ),
        "prov": (
            "        if self.obs.prov:\n"
            "            self.obs.provenance.file_write(path)\n"
        ),
    }
    body = "".join(text for name, text in lines.items() if name != member)
    return (
        "from fake import FAULTS as _FAULTS, SCHED as _SCHED\n\n\n"
        "class OneGate:\n"
        "    def write(self, path, data):\n"
        f"{body}"
        "        self.store[path] = data\n"
        "        return len(data)\n"
    )


#: An evidence plane that fans out to its listener list the way the
#: flight recorder's tap contract requires (gated, so the disarmed path
#: stays zero-cost), with the fanout one helper down for the inliner.
TAPPED_OK = '''
class TappedPlane:
    def record(self, event):
        self._events.append(event)
        self._notify(event)
        return event

    def _notify(self, event):
        if self._listeners:
            for listener in self._listeners:
                listener(event)
'''

#: The same plane with the fanout silently dropped: it still records,
#: every dynamic test still passes, but the recorder is now blind to it.
TAPPED_SILENT = '''
class SilentPlane:
    def record(self, event):
        self._events.append(event)
        return event
'''


#: A TOCTOU mirror of the planted IpcGuard race: one entry point rebuilds
#: a registry without locks, another reads it — plus a properly locked
#: sibling attribute as the negative control, and a scheduler-off
#: fallback write that must NOT be reported.
RACY = '''
from fake import SCHED as _SCHED


class RacyGuard:
    def __init__(self):
        self._registry = {}
        self._audit = []
        self._locked_table = {}
        self.lock = RWLock("racy")

    def rebuild(self, entries):
        staged = dict(self._registry)
        staged.update(entries)
        self._registry.clear()
        if _SCHED.enabled:
            _SCHED.yield_point("racy.rebuild", resource="registry", rw="w")
        self._registry.update(staged)

    def decide(self, key):
        self._audit.append(key)
        return self._registry.get(key, True)

    def locked_put(self, key, value):
        with self.lock.write():
            self._locked_table[key] = value

    def locked_get(self, key):
        with self.lock.read():
            return self._locked_table.get(key)

    def fallback_put(self, key, value):
        if _SCHED.enabled:
            with self.lock.write():
                self._locked_table[key] = value
            return
        self._locked_table[key] = value
'''

#: Every determinism rule violated once, plus compliant twins.
NONDET = '''
import os
import random
import time
import uuid
from datetime import datetime


def bad_clock():
    return time.time()


def bad_unseeded():
    return random.Random()


def good_seeded(seed):
    return random.Random(seed)


def bad_global_random():
    return random.randint(0, 10)


def bad_entropy():
    return os.urandom(8) + uuid.uuid4().bytes


def bad_now():
    return datetime.now()


def bad_digest(items):
    acc = []
    for item in set(items):
        acc.append(item)
    return sha256(repr(acc)).hexdigest()


def good_digest(items):
    acc = []
    for item in sorted(set(items)):
        acc.append(item)
    return sha256(repr(acc)).hexdigest()
'''


def build_fixture(tmp_path: Path, name: str, source: str) -> CodeIndex:
    """Write one fixture module into a package and index it."""
    root = tmp_path / "fixturepkg"
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    (root / f"{name}.py").write_text(source)
    return CodeIndex.build(root, package="fixturepkg")
