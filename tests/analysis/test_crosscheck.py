"""Static ↔ dynamic cross-check (the PolyScope-style closing of the loop).

Every statically reported race pair must either be *confirmed* by the
dynamic detector — its annotated resource shows up in
``race_candidates()`` when the interleave sweep replays the planted
counterexample — or carry a written false-positive justification in the
committed baseline. A lockset finding that is neither confirmed nor
justified fails this test, which is the contract that keeps the
warn-only lockset lane honest.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.locksets import check_locksets
from repro.fuzz.interleave import interleave_sweep

from .conftest import BASELINE_PATH

pytestmark = [pytest.mark.analysis, pytest.mark.interleave]

#: Matches tests/fuzz/test_interleave.py: this scenario seed's guard-race
#: track collides with the victim's AM launches within a few schedules.
HITTING_SCENARIO_SEED = 3

#: A baseline lockset justification must open with its verdict.
VERDICTS = ("False positive", "Deliberate", "True positive")


@pytest.fixture(scope="module")
def dynamic_resources():
    """Resources the dynamic detector flags on the planted sweep."""
    report = interleave_sweep(
        n_scenarios=1,
        schedules_per_scenario=4,
        base_seed=HITTING_SCENARIO_SEED,
        planted="binder-guard-race",
    )
    assert report.counterexample is not None, "planted sweep found nothing"
    candidates = report.counterexample.replay().race_candidates
    return {resource for resource, _a, _b in candidates}


@pytest.fixture(scope="module")
def baseline_entries():
    raw = json.loads(BASELINE_PATH.read_text())
    return {entry["fingerprint"]: entry for entry in raw["suppressions"]}


def test_every_static_race_is_confirmed_or_justified(
    tree_index, dynamic_resources, baseline_entries
):
    findings = check_locksets(tree_index)
    assert findings, "lockset pass reports nothing — the control is gone"
    unaccounted = []
    for finding in findings:
        resource = finding.datum("dynamic_resource")
        if resource is not None and resource in dynamic_resources:
            continue  # dynamically confirmed
        entry = baseline_entries.get(finding.fingerprint)
        if entry is not None and entry["justification"].startswith(VERDICTS):
            continue  # justified false positive / deliberate window
        unaccounted.append(finding)
    assert unaccounted == [], "\n".join(
        f"{f.render()} — neither dynamically confirmed nor justified"
        for f in unaccounted
    )


def test_the_positive_control_is_dynamically_confirmed(
    tree_index, dynamic_resources
):
    """The planted binder-guard-race must be found by BOTH detectors:
    statically by the lockset pass, dynamically by race_candidates()."""
    findings = check_locksets(tree_index)
    control = [f for f in findings if f.datum("planted") == "binder-guard-race"]
    assert len(control) == 1
    assert control[0].datum("dynamic_resource") in dynamic_resources
