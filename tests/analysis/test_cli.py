"""The CLI contract: exit codes, JSON round-trip, baseline semantics."""

from __future__ import annotations

import datetime
import json

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry, apply_baseline
from repro.analysis.cli import main
from repro.analysis.findings import Finding, rank_findings

from .conftest import BASELINE_PATH, TREE_ROOT
from .fixtures import GATED_BARE, build_fixture

pytestmark = [pytest.mark.analysis]

TODAY = "2026-08-07"


def _run(capsys, *argv: str) -> tuple:
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCleanTree:
    def test_clean_modulo_committed_baseline(self, capsys):
        code, out = _run(
            capsys,
            "--baseline", str(BASELINE_PATH),
            "--today", TODAY,
        )
        assert code == 0, out
        assert "0 new finding(s)" in out

    def test_without_baseline_only_known_findings_remain(self, capsys):
        """No baseline: exactly the 11 documented findings, nothing else
        — the tree itself carries no unknown defects."""
        code, out = _run(capsys, "--format", "json", "--today", TODAY)
        assert code == 1
        report = json.loads(out)
        rules = {f["rule"] for f in report["new"]}
        assert rules == {"wall-clock", "lockset-race"}
        assert report["parse_errors"] == []

    def test_no_stale_suppressions(self, capsys):
        code, out = _run(
            capsys,
            "--format", "json",
            "--baseline", str(BASELINE_PATH),
            "--today", TODAY,
        )
        assert code == 0
        report = json.loads(out)
        assert report["stale_suppressions"] == []


class TestJsonRoundTrip:
    def test_findings_round_trip_through_the_report(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code, out = _run(
            capsys,
            "--format", "json",
            "--today", TODAY,
            "--out", str(out_path),
        )
        printed = json.loads(out)
        written = json.loads(out_path.read_text())
        assert printed == written
        for raw in printed["new"]:
            finding = Finding.from_dict(raw)
            assert finding.to_dict() == raw
            assert finding.fingerprint == raw["fingerprint"]

    def test_ranking_is_severity_major(self, capsys):
        _, out = _run(capsys, "--format", "json", "--today", TODAY)
        report = json.loads(out)
        severities = [f["severity"] for f in report["new"]]
        assert severities == sorted(
            severities, key=lambda s: {"error": 0, "warning": 1, "info": 2}[s]
        )


class TestBaselineSemantics:
    def _finding(self) -> Finding:
        return Finding(
            pass_name="gates",
            rule="missing-obs",
            severity="error",
            module="m",
            symbol="C.f",
            file="m.py",
            line=3,
            message="planted",
        )

    def test_expired_suppression_resurfaces(self):
        finding = self._finding()
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    fingerprint=finding.fingerprint,
                    pass_name="gates",
                    rule="missing-obs",
                    symbol="C.f",
                    justification="temporary",
                    expires="2026-01-01",
                )
            ]
        )
        live = apply_baseline([finding], baseline, datetime.date(2025, 12, 31))
        assert live.new == [] and len(live.suppressed) == 1
        expired = apply_baseline([finding], baseline, datetime.date(2026, 1, 2))
        assert expired.new == [finding]
        assert [e.fingerprint for _, e in expired.resurfaced] == [finding.fingerprint]

    def test_stale_entries_are_reported(self):
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    fingerprint="feedfacefeedface",
                    pass_name="gates",
                    rule="missing-obs",
                    symbol="Gone.method",
                    justification="matched something once",
                )
            ]
        )
        result = apply_baseline([], baseline, datetime.date(2026, 8, 7))
        assert [e.fingerprint for e in result.stale] == ["feedfacefeedface"]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline(
            entries=[
                BaselineEntry(
                    fingerprint="0123456789abcdef",
                    pass_name="determinism",
                    rule="wall-clock",
                    symbol="measure",
                    justification="host profiling only",
                    added="2026-08-07",
                    expires="2027-08-07",
                )
            ]
        )
        original.save(path)
        assert Baseline.load(path).entries == original.entries


class TestExitCodes:
    def test_new_findings_exit_1_and_warn_only_exits_0(self, capsys, tmp_path):
        build_fixture(tmp_path, "mod", GATED_BARE)
        # The fixture package has no registered boundaries, so force a
        # finding with the live tree sans baseline instead.
        code, _ = _run(capsys, "--today", TODAY)
        assert code == 1
        code, _ = _run(capsys, "--warn-only", "--today", TODAY)
        assert code == 0

    def test_unknown_pass_is_a_usage_error(self, capsys):
        assert main(["--passes", "vibes"]) == 2

    def test_bad_root_is_a_usage_error(self, capsys):
        assert main(["--root", "/nonexistent/path"]) == 2

    def test_unreadable_baseline_is_a_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["--baseline", str(bad), "--today", TODAY]) == 2


class TestWriteBaseline:
    def test_snapshot_suppresses_the_current_tree(self, capsys, tmp_path):
        path = tmp_path / "snap.json"
        code, _ = _run(capsys, "--write-baseline", str(path), "--today", TODAY)
        assert code == 0
        code, out = _run(capsys, "--baseline", str(path), "--today", TODAY)
        assert code == 0
        assert "0 new finding(s)" in out
        # Placeholder justifications are deliberately unreviewable.
        snapshot = json.loads(path.read_text())
        assert all(
            e["justification"].startswith("TODO")
            for e in snapshot["suppressions"]
        )
