from pathlib import Path

import pytest

import repro
from repro.analysis.ir import CodeIndex

#: The installed package root the CLI scans by default.
TREE_ROOT = Path(repro.__file__).resolve().parent

#: The committed baseline the CI lane runs against.
BASELINE_PATH = Path(__file__).resolve().parent.parent.parent / "analysis" / "BASELINE.json"


@pytest.fixture(scope="session")
def tree_index() -> CodeIndex:
    """One shared AST index over the live ``src/repro`` tree."""
    return CodeIndex.build(TREE_ROOT, package="repro")
