"""The adversarial corpus: confined as delegates, silent as plain apps.

Each attacker class gets three checks: (1) on a stock device (or as a
plain app with a readable target) its channel actually leaks — the apps
are real attacks, not strawmen; (2) driven as a Maxoid delegate, every
channel dead-ends in the victim's volatile state with zero S1-S4
violations; (3) the negative control — the *same op sequence without
delegation* trips zero rules, so the rule engine isn't just flagging
everything the attackers touch.
"""

from __future__ import annotations

import pytest

from repro.apps import ADVERSARIAL_PACKAGES, ALL_PACKAGES, install_full_corpus
from repro.apps.adversarial import exfil_browser, interpreter, launderer, leaky_provider
from repro.core.device import Device
from repro.errors import ReproError, SecurityException
from repro.fuzz.harness import SECRET, SECRET_PATH, VICTIM_PACKAGE
from repro.obs import OBS
from repro.obs.monitor import SecurityMonitor

pytestmark = pytest.mark.fuzz


@pytest.fixture
def corpus_device():
    """Maxoid device, full corpus, planted victim secret."""
    device = Device(maxoid_enabled=True)
    apps = install_full_corpus(device)
    device.apps = apps
    device.network.add_host(exfil_browser.HOME_HOST)
    device.spawn(VICTIM_PACKAGE).write_internal("secrets/secret.txt", SECRET)
    return device


@pytest.fixture
def monitored(corpus_device):
    """The corpus device under capture with the online monitor attached."""
    with OBS.capture(prov=True):
        with SecurityMonitor(
            OBS.tracer, set(ALL_PACKAGES), ledger=OBS.provenance
        ) as monitor:
            yield corpus_device, monitor


def test_corpus_registers_alongside_catalogue(corpus_device):
    assert set(ADVERSARIAL_PACKAGES) <= set(corpus_device.apps)
    # The Table 1 set is still intact next to the attackers.
    assert VICTIM_PACKAGE in corpus_device.apps
    assert len(ALL_PACKAGES) == len(corpus_device.apps)


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


def test_interpreter_delegate_reads_but_cannot_publish(monitored):
    device, monitor = monitored
    api = device.spawn(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
    app = device.apps[interpreter.PACKAGE]
    app.run_script(api, f"read {SECRET_PATH}\nexfil loot.bin\npost evil.example x")
    # The read succeeded (delegates see the initiator's view)...
    assert app.accumulator == SECRET
    outcomes = dict(app.transcript)
    assert outcomes[f"read {SECRET_PATH}"].startswith("ok")
    # ...the beacon died (delegates are offline)...
    assert outcomes["post evil.example x"].startswith("err")
    # ...and the "public" drop is only visible inside Vol(victim).
    victim = device.spawn(VICTIM_PACKAGE)
    assert (
        victim.sys.read_file(f"/storage/sdcard/tmp/{interpreter.DROP_DIR}/loot.bin")
        == SECRET
    )
    plain = device.spawn(launderer.PACKAGE)
    with pytest.raises(ReproError):
        plain.read_external(f"{interpreter.DROP_DIR}/loot.bin")
    assert monitor.violations == []


def test_interpreter_negative_control_without_delegation(monitored):
    """Same script, plain process: the read is denied, nothing leaks,
    and — the control — zero rules fire."""
    device, monitor = monitored
    api = device.spawn(interpreter.PACKAGE)
    app = device.apps[interpreter.PACKAGE]
    app.run_script(api, f"read {SECRET_PATH}\nexfil loot.bin\nclip-copy")
    assert dict(app.transcript)[f"read {SECRET_PATH}"] == "err:PermissionDenied"
    assert app.accumulator == b""
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# file:// exfil browser
# ---------------------------------------------------------------------------


def test_browser_delegate_renders_but_outbox_is_volatile(monitored):
    device, monitor = monitored
    api = device.spawn(exfil_browser.PACKAGE, initiator=VICTIM_PACKAGE)
    app = device.apps[exfil_browser.PACKAGE]
    result = app.render_file(api, SECRET_PATH)
    assert result["rendered"] and result["bytes"] == len(SECRET)
    assert result["beaconed"] is False  # ENETUNREACH for delegates
    plain = device.spawn(launderer.PACKAGE)
    with pytest.raises(ReproError):
        plain.read_external(f"{exfil_browser.OUTBOX_DIR}/secret.txt")
    assert monitor.violations == []


def test_browser_negative_control_without_delegation(monitored):
    device, monitor = monitored
    api = device.spawn(exfil_browser.PACKAGE)
    app = device.apps[exfil_browser.PACKAGE]
    with pytest.raises(ReproError):
        app.render_file(api, SECRET_PATH)
    # Rendering its own (public) files beacons freely — and is no crime.
    own = api.write_external("pages/home.html", b"<html>hi</html>")
    result = app.render_file(api, own)
    assert result["beaconed"] is True
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# Exported leaky provider
# ---------------------------------------------------------------------------


def test_leaky_provider_serves_plain_ingest_to_anyone(monitored):
    """The exported surface really is open: no grant, foreign caller."""
    device, monitor = monitored
    app = device.apps[leaky_provider.PACKAGE]
    ingester = device.spawn(leaky_provider.PACKAGE)
    own = ingester.write_external("docs/memo.txt", b"public memo")
    app.ingest(ingester, own)
    stranger = device.spawn(launderer.PACKAGE)
    assert stranger.open_input(app.content_uri("memo.txt")) == b"public memo"
    assert monitor.violations == []


def test_leaky_provider_delegate_ingest_is_invisible(monitored):
    """Hoarded under Priv(leaky^victim), the secret never reaches the
    plain serving process — the exported surface has nothing to leak."""
    device, monitor = monitored
    app = device.apps[leaky_provider.PACKAGE]
    delegate = device.spawn(leaky_provider.PACKAGE, initiator=VICTIM_PACKAGE)
    app.ingest(delegate, SECRET_PATH)
    stranger = device.spawn(launderer.PACKAGE)
    with pytest.raises(ReproError):
        stranger.open_input(app.content_uri("secret.txt"))
    assert monitor.violations == []


def test_unexported_provider_still_needs_grant(monitored):
    """The exported flag is per-provider: the Email attachment provider
    keeps its per-URI grant discipline."""
    device, monitor = monitored
    email_app = device.apps[VICTIM_PACKAGE]
    victim = device.spawn(VICTIM_PACKAGE)
    att_id = email_app.receive_attachment(victim, "a.pdf", b"%PDF attach")
    uri = email_app.attachment_uri(att_id)
    stranger = device.spawn(launderer.PACKAGE)
    with pytest.raises(SecurityException):
        stranger.open_input(uri)
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# Clipboard launderer
# ---------------------------------------------------------------------------


def test_mule_poll_comes_back_empty_under_isolation(monitored):
    device, monitor = monitored
    delegate = device.spawn(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
    app = device.apps[interpreter.PACKAGE]
    app.run_script(delegate, f"read {SECRET_PATH}\nclip-copy")
    mule_api = device.spawn(launderer.PACKAGE)
    mule = device.apps[launderer.PACKAGE]
    assert mule.poll(mule_api) is None  # main clipboard never saw it
    assert mule.loot == []
    assert monitor.violations == []


def test_mule_negative_control_public_clipboard_traffic(monitored):
    """Laundering *public* clipboard content is not a violation."""
    device, monitor = monitored
    victim = device.spawn(VICTIM_PACKAGE)
    victim.clipboard_set("a perfectly public note")
    mule_api = device.spawn(launderer.PACKAGE)
    mule = device.apps[launderer.PACKAGE]
    path = mule.poll(mule_api)
    assert path is not None and mule.loot == [path]
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# Stock-device positive controls: the attacks are real
# ---------------------------------------------------------------------------


def test_attacks_succeed_on_stock_android():
    device = Device(maxoid_enabled=False)
    apps = install_full_corpus(device)
    device.spawn(VICTIM_PACKAGE).write_internal(
        "secrets/secret.txt", SECRET, mode=0o644
    )
    # Interpreter: a victim-supplied script exfiltrates to real storage.
    interp = device.spawn(interpreter.PACKAGE)
    apps[interpreter.PACKAGE].run_script(
        interp, f"read {SECRET_PATH}\nexfil loot.bin"
    )
    stranger = device.spawn(launderer.PACKAGE)
    assert stranger.read_external(f"{interpreter.DROP_DIR}/loot.bin") == SECRET
    # Clipboard: one global domain, the mule sees the victim's copy.
    victim = device.spawn(VICTIM_PACKAGE)
    victim.clipboard_set("secret text")
    mule_api = device.spawn(launderer.PACKAGE)
    assert apps[launderer.PACKAGE].poll(mule_api) is not None
