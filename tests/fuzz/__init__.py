"""Adversarial corpus and delegation-fuzzer tests."""
