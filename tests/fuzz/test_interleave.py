"""The S1-S4 race sweep: finding, shrinking, and replaying interleavings.

The planted ``binder-guard-race`` is the positive control: a
check-then-act window in the binder delegate guard that *no sequential
op order can exploit* — only an adversarial interleaving lands a
delegate's drop inside the guard's registry-rebuild window. The sweep
must find it, shrink it (ops and schedule), and replay it
byte-identically from its ``(seed, schedule)`` pair; the unplanted
sweep over the same generator must stay silent.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.harness import FuzzWorld, VICTIM_PACKAGE
from repro.fuzz.interleave import (
    _INTERP,
    _MULE,
    concurrent_scenario_from_seed,
    interleave_sweep,
    run_interleaved,
)
from repro.fuzz.ops import (
    CrashNow,
    DropLoot,
    Invoke,
    ReadExternal,
    ReadSecret,
    Spawn,
    VolatileCommit,
    WriteExternal,
)

pytestmark = [pytest.mark.fuzz, pytest.mark.interleave]

#: Locally verified: this scenario seed's guard-race track collides with
#: the victim's AM launches within the first few schedule seeds.
HITTING_SCENARIO_SEED = 3


def _planted_sweep(artifact_path=None):
    return interleave_sweep(
        n_scenarios=1,
        schedules_per_scenario=4,
        base_seed=HITTING_SCENARIO_SEED,
        planted="binder-guard-race",
        artifact_path=artifact_path,
    )


class TestPlantedRace:
    def test_sweep_finds_and_shrinks_the_race(self):
        report = _planted_sweep()
        assert report.found
        cx = report.counterexample
        renders = cx.result.violation_renders()
        assert any("S1" in r and _MULE in r for r in renders)
        # Shrinking bit: the minimal reproducer is a fraction of the
        # generated scenario (which starts at ~20 ops across 3 tracks).
        assert sum(len(ops) for ops in cx.tracks.values()) <= 15
        assert cx.schedule and cx.decisions

    def test_counterexample_replays_byte_identically(self):
        cx = _planted_sweep().counterexample
        replay = cx.replay()
        assert replay.digest() == cx.digest
        assert replay.fingerprint() == cx.fingerprint
        assert replay.divergences == 0
        assert replay.decisions == list(cx.decisions)
        assert replay.run.outcomes == cx.result.outcomes
        assert replay.run.violation_renders() == cx.result.violation_renders()

    def test_race_is_sequentially_invisible(self):
        """The exact minimal ops, run in plain sequential order (no
        scheduler), never violate: the planted bug is a pure race."""
        cx = _planted_sweep().counterexample
        with FuzzWorld(planted="binder-guard-race") as world:
            for name in sorted(cx.tracks):
                for op in cx.tracks[name]:
                    world.step(op)
            assert world.violations == []
        drops = [o for r, o in world.outcomes if "drop register" in r]
        assert all(outcome in ("err:IpcDenied", "skip") for outcome in drops)

    def test_detector_flags_the_unsynchronized_registry(self):
        cx = _planted_sweep().counterexample
        candidates = cx.replay().race_candidates
        assert any(resource == "guard-registry" for resource, _a, _b in candidates)

    def test_artifact_json_round_trips(self, tmp_path):
        artifact = tmp_path / "race-counterexample.json"
        report = _planted_sweep(artifact_path=str(artifact))
        data = json.loads(artifact.read_text())
        cx = report.counterexample
        assert data["schedule_digest"] == cx.digest
        assert data["fingerprint"] == cx.fingerprint
        assert data["planted"] == "binder-guard-race"
        assert data["schedule"] == list(cx.schedule)
        assert data["violations"] == cx.result.violation_renders()
        assert list(data["tracks"]) == sorted(cx.tracks)


class TestUnplantedControls:
    def test_unplanted_sweep_is_clean(self):
        report = interleave_sweep(
            n_scenarios=4, schedules_per_scenario=3, base_seed=0
        )
        assert not report.found

    def test_scenario_generation_is_deterministic(self):
        one = concurrent_scenario_from_seed(7)
        two = concurrent_scenario_from_seed(7)
        assert {k: [op.render() for op in v] for k, v in one.items()} == {
            k: [op.render() for op in v] for k, v in two.items()
        }
        other = concurrent_scenario_from_seed(8)
        assert {k: [op.render() for op in v] for k, v in one.items()} != {
            k: [op.render() for op in v] for k, v in other.items()
        }


class TestScheduleDeterminism:
    """Satellite: same seed => identical digest, span order, lineage."""

    def _run(self, sched_seed: int):
        tracks = concurrent_scenario_from_seed(HITTING_SCENARIO_SEED)
        return run_interleaved(
            tracks, sched_seed=sched_seed, planted="binder-guard-race"
        )

    def test_same_seed_identical_schedule_spans_and_lineage(self):
        first = self._run(1000 * HITTING_SCENARIO_SEED)
        second = self._run(1000 * HITTING_SCENARIO_SEED)
        assert first.decisions == second.decisions
        assert first.digest() == second.digest()
        # Span close order (name, ctx) — the trace plane interleaves
        # identically run to run.
        assert first.spans == second.spans
        # Violation renders embed the provenance lineage chains.
        assert first.run.violation_renders() == second.run.violation_renders()
        assert first.fingerprint() == second.fingerprint()

    def test_distinct_seeds_distinct_digests(self):
        digests = {self._run(s).digest() for s in (3000, 3001, 3002)}
        assert len(digests) > 1


class TestCrashRecovery:
    """Satellite: crash mid-delegate, recover under the scheduler, and
    prove pre-crash taint cannot launder post-recovery."""

    @staticmethod
    def _tracks():
        delegate = f"{_INTERP}^{VICTIM_PACKAGE}"
        return {
            "t0:victim": [Invoke(_MULE), VolatileCommit(VICTIM_PACKAGE)],
            "t1:attack": [
                Spawn(_INTERP, VICTIM_PACKAGE),
                ReadSecret(delegate),
                WriteExternal(delegate, "stash"),
                CrashNow(),
                Spawn(_INTERP, VICTIM_PACKAGE),
                ReadExternal(delegate, "stash"),
                DropLoot(delegate, "post"),
            ],
        }

    def test_recovery_under_scheduler_stays_confined(self):
        for sched_seed in range(5):
            result = run_interleaved(self._tracks(), sched_seed=sched_seed)
            outcomes = [outcome for _r, outcome in result.run.outcomes]
            assert "crash+recovered" in outcomes
            assert result.violations == []
            # The post-recovery drop of the re-read (still delegate-
            # confined) secret is refused: taint from before the crash
            # has no laundering channel after it.
            drops = [
                o for r, o in result.run.outcomes if "drop register" in r
            ]
            assert drops and all(o in ("err:IpcDenied", "skip") for o in drops)

    def test_crash_recovery_is_deterministic(self):
        first = run_interleaved(self._tracks(), sched_seed=2)
        second = run_interleaved(self._tracks(), sched_seed=2)
        assert first.digest() == second.digest()
        assert first.fingerprint() == second.fingerprint()
        assert first.run.outcomes == second.run.outcomes
