"""``provenance.explain()`` across a multi-hop laundering chain.

The chain under test moves the victim's secret through every IPC
medium the corpus models — file read, clipboard, exported content
provider, file write — on a world with the clipboard-isolation
vulnerability planted (so the cross-domain hop is live):

1. a delegate browser reads the secret (``vfs.read``),
2. copies it to the clipboard (``clip.set``; planted bug collapses the
   per-domain clipboards, so it lands on ``<main>``),
3. a plain leaky-provider app pastes it (``clip.get``) and stashes it in
   its served inbox (``vfs.write`` to its private dir — *not*
   declassified: the data is the victim's, not the writer's),
4. a plain mule fetches it over the exported provider surface
   (``provider.open_file`` Binder transfer) and
5. publishes it to shared storage (``vfs.write`` to public).

``explain()`` on the published file must surface the *entire*
derivation — every hop, ending at the ``Priv`` source — and the online
monitor's S1 violation must carry the same lineage, because that
rendered chain is exactly what a shrunk counterexample shows.
"""

from __future__ import annotations

import pytest

from repro.apps.adversarial import exfil_browser, launderer, leaky_provider
from repro.fuzz.harness import FuzzWorld, SECRET_PATH, VICTIM_PACKAGE
from repro.obs import OBS

pytestmark = pytest.mark.fuzz


@pytest.fixture
def planted_world():
    world = FuzzWorld(planted="clipboard-isolation")
    world.start()
    try:
        yield world
    finally:
        world.close()


def _launder(world: FuzzWorld) -> str:
    """Run the 4-medium chain; returns the final public path."""
    delegate = world.apis[
        world.spawn(exfil_browser.PACKAGE, VICTIM_PACKAGE)
    ]
    secret = delegate.sys.read_file(SECRET_PATH)
    delegate.clipboard_set(secret.decode("latin-1"))

    leaky = world.apis[world.spawn(leaky_provider.PACKAGE)]
    pasted = leaky.clipboard_get() or ""
    leaky.write_internal("inbox/secret.txt", pasted.encode("latin-1"))

    mule = world.apis[world.spawn(launderer.PACKAGE)]
    provider_app = world.apps[leaky_provider.PACKAGE]
    served = mule.open_input(provider_app.content_uri("secret.txt"))
    return mule.write_external("fuzz/laundered.bin", served)


def test_explain_renders_every_hop_back_to_the_priv_source(planted_world):
    out_path = _launder(planted_world)
    rendered = OBS.provenance.explain(out_path).render()
    # Every medium the data crossed appears, in one derivation chain.
    for hop in (
        "vfs.write",
        "provider.open_file",
        "clip.get",
        "clip.set",
        "vfs.read",
    ):
        assert hop in rendered, f"missing hop {hop}:\n{rendered}"
    # The chain bottoms out at the planted secret with its Priv label.
    assert f"source {SECRET_PATH}" in rendered
    assert f"[Priv({VICTIM_PACKAGE})]" in rendered
    # The delegate and all three plain attackers are attributed.
    assert f"{exfil_browser.PACKAGE}^{VICTIM_PACKAGE}" in rendered
    assert launderer.PACKAGE in rendered


def test_monitor_violation_carries_the_full_lineage(planted_world):
    _launder(planted_world)
    s1 = [v for v in planted_world.violations if v.render().startswith("S1")]
    assert s1, [v.render() for v in planted_world.violations]
    rendered = s1[-1].render()
    # The violation's counterexample lineage shows the provider hop and
    # the clipboard hop, not just the final write.
    assert "provider.open_file" in rendered
    assert "clip.set" in rendered
    assert f"[Priv({VICTIM_PACKAGE})]" in rendered
