"""The PolyScope-style triage pass: policy-derived pruning of the fuzz
space, cross-checked against what the simulation actually enforces."""

from __future__ import annotations

import pytest

from repro.apps.adversarial import interpreter, launderer, leaky_provider
from repro.fuzz.harness import FuzzWorld, SECRET_PATH, VICTIM_PACKAGE
from repro.fuzz.reachability import Subject, triage

pytestmark = pytest.mark.fuzz

_PACKAGES = (VICTIM_PACKAGE, interpreter.PACKAGE, launderer.PACKAGE)
_PROVIDERS = {
    "user_dictionary": (None, False),
    leaky_provider.AUTHORITY: (leaky_provider.PACKAGE, True),
    "com.android.email.attachmentprovider": (VICTIM_PACKAGE, False),
}


@pytest.fixture
def report():
    subjects = [
        Subject(VICTIM_PACKAGE),
        Subject(interpreter.PACKAGE),
        Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE),
        Subject(launderer.PACKAGE),
    ]
    return triage(subjects, _PACKAGES, providers=_PROVIDERS)


def test_triage_prunes_a_meaningful_fraction(report):
    assert report.total > 0
    # The whole point: a sizeable slice of the raw product space never
    # needs a fuzz example.
    assert 0.15 <= report.pruned_fraction <= 0.75, report.summary()


def test_plain_foreign_priv_is_pruned(report):
    attacker = Subject(interpreter.PACKAGE)
    assert not report.is_reachable(attacker, f"priv:{VICTIM_PACKAGE}", "read")
    assert report.is_reachable(attacker, f"priv:{interpreter.PACKAGE}", "read")


def test_delegate_reaches_initiator_priv_but_not_third_parties(report):
    delegate = Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
    assert report.is_reachable(delegate, f"priv:{VICTIM_PACKAGE}", "read")
    assert not report.is_reachable(delegate, f"priv:{launderer.PACKAGE}", "read")


def test_delegate_write_notes_volatile_redirect(report):
    delegate = Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
    triples = [
        t for t in report.pool(delegate)
        if t.resource == "ext:shared" and t.op == "write"
    ]
    assert triples and "Vol" in triples[0].note


def test_delegate_network_and_foreign_providers_pruned(report):
    delegate = Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
    pruned = {(t.resource, t.op) for t, _ in report.pruned if t.subject == delegate}
    assert ("net:internet", "connect") in pruned
    # Exported or not, a foreign app-defined endpoint is behind the
    # Binder policy for delegates.
    assert (f"provider:{leaky_provider.AUTHORITY}", "open") in pruned
    # ...but the victim's delegates may reach the victim's own provider.
    assert report.is_reachable(
        delegate, "provider:com.android.email.attachmentprovider", "open"
    )


def test_exported_provider_reachable_for_plain_subjects(report):
    stranger = Subject(launderer.PACKAGE)
    assert report.is_reachable(
        stranger, f"provider:{leaky_provider.AUTHORITY}", "open"
    )
    assert not report.is_reachable(
        stranger, "provider:com.android.email.attachmentprovider", "open"
    )


def test_stock_topology_keeps_channels_open():
    subjects = [Subject(interpreter.PACKAGE)]
    stock = triage(subjects, _PACKAGES, providers=_PROVIDERS, maxoid=False)
    maxoid = triage(
        [Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)],
        _PACKAGES,
        providers=_PROVIDERS,
        maxoid=True,
    )
    # Stock plain attacker keeps the network; the Maxoid delegate loses it.
    assert stock.is_reachable(subjects[0], "net:internet", "connect")
    assert not maxoid.is_reachable(
        Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE),
        "net:internet",
        "connect",
    )


def test_triage_matches_enforcement():
    """Ground truth: every pruned file-read really is denied, every
    reachable one really succeeds (the triage is sound *and* tight for
    the file plane)."""
    world = FuzzWorld()
    world.start()
    try:
        plain = world.apis[world.spawn(interpreter.PACKAGE)]
        delegate = world.apis[world.spawn(interpreter.PACKAGE, VICTIM_PACKAGE)]
        report = triage(
            [
                Subject(interpreter.PACKAGE),
                Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE),
            ],
            _PACKAGES,
            providers=_PROVIDERS,
        )
        # Pruned: plain attacker reading the victim's secret.
        assert not report.is_reachable(
            Subject(interpreter.PACKAGE), f"priv:{VICTIM_PACKAGE}", "read"
        )
        with pytest.raises(Exception):
            plain.sys.read_file(SECRET_PATH)
        # Reachable: the delegate reading the same path.
        assert report.is_reachable(
            Subject(interpreter.PACKAGE, initiator=VICTIM_PACKAGE),
            f"priv:{VICTIM_PACKAGE}",
            "read",
        )
        assert delegate.sys.read_file(SECRET_PATH)
    finally:
        world.close()
