"""The delegation fuzzer: clean on stock Maxoid, sharp on planted bugs.

Two regimes, mirroring the acceptance bar:

- **Soundness** (no false positives): the hypothesis stateful machine
  and the seeded sweep over the unmodified rule engine + enforcement
  must produce *zero* violations. ``FUZZ_EXAMPLES`` / ``FUZZ_SWEEP``
  scale the budgets (the CI fuzz lane raises them to 500+).
- **Sensitivity** (no false negatives): with exactly one enforcement
  point disabled (``PLANTED_VULNS``), both fuzzers must find a
  violation; the seeded driver must shrink it to a minimal sequence
  whose counterexample replays byte-identically from its seed and whose
  lineage reaches the ``Priv`` source.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.fuzz import fuzz_sweep, scenario_from_seed, run_scenario
from repro.fuzz.harness import VICTIM_PACKAGE
from repro.fuzz.stateful import ConfinementViolated, DelegationMachine

pytestmark = pytest.mark.fuzz

#: Seeded-sweep budget; the CI fuzz lane raises this to >= 500.
SWEEP_N = int(os.environ.get("FUZZ_SWEEP", "40"))


class PlantedClipboardMachine(DelegationMachine):
    planted = "clipboard-isolation"


# ---------------------------------------------------------------------------
# Soundness
# ---------------------------------------------------------------------------


# The machine *is* the test: hypothesis drives DelegationMachine examples
# under the pinned repro-ci profile; the invariant raising anywhere fails.
TestDelegationInvariant = DelegationMachine.TestCase


def test_seeded_sweep_is_clean_on_stock_maxoid():
    report = fuzz_sweep(SWEEP_N)
    assert not report.found, report.counterexample.render()
    assert report.examples == SWEEP_N


def test_scenarios_are_deterministic():
    for seed in (0, 7, 23):
        first = [op.render() for op in scenario_from_seed(seed)]
        second = [op.render() for op in scenario_from_seed(seed)]
        assert first == second


def test_runs_are_reproducible():
    ops = scenario_from_seed(11)
    assert (
        run_scenario(ops).fingerprint() == run_scenario(ops).fingerprint()
    )


# ---------------------------------------------------------------------------
# Sensitivity (planted-vulnerability positive controls)
# ---------------------------------------------------------------------------


def test_stateful_machine_finds_planted_vulnerability():
    cfg = settings(
        settings.get_profile("repro-ci-noshrink"),
        max_examples=max(80, int(os.environ.get("FUZZ_EXAMPLES", "80"))),
    )
    with pytest.raises(ConfinementViolated) as caught:
        run_state_machine_as_test(PlantedClipboardMachine, settings=cfg)
    message = str(caught.value)
    assert "S1" in message
    assert f"Priv({VICTIM_PACKAGE})" in message


def test_sweep_finds_shrinks_and_explains_planted_vulnerability():
    report = fuzz_sweep(SWEEP_N, planted="clipboard-isolation")
    assert report.found
    counterexample = report.counterexample

    # Shrunk: every remaining op is load-bearing.
    for index in range(len(counterexample.ops)):
        reduced = [
            op for i, op in enumerate(counterexample.ops) if i != index
        ]
        assert not run_scenario(
            reduced, planted="clipboard-isolation"
        ).violations, f"op {index} was removable"

    # The report names the rule and carries a lineage that reaches the
    # planted Priv source.
    rendered = counterexample.render()
    assert "S1" in rendered
    assert f"source /data/data/{VICTIM_PACKAGE}/secrets/secret.txt" in rendered
    assert f"[Priv({VICTIM_PACKAGE})]" in rendered

    # Byte-identical replay from the recorded seed alone.
    assert counterexample.replay().fingerprint() == counterexample.fingerprint


def test_planted_counterexample_is_minimal_laundering_chain():
    """The canonical planted bug shrinks to the exact 6-op chain:
    spawn delegate, read, copy, spawn mule, paste, publish."""
    report = fuzz_sweep(SWEEP_N, planted="clipboard-isolation")
    assert report.found
    renders = [op.render() for op in report.counterexample.ops]
    assert len(renders) <= 7
    assert any("read secret" in line for line in renders)
    assert any("clipboard copy" in line for line in renders)
    assert any("clipboard paste" in line for line in renders)
    assert any("publish" in line for line in renders)


def test_stock_android_baseline_is_loud():
    """Sanity: with Maxoid off entirely, the very first seeds violate —
    the corpus attacks are real and the monitor sees them."""
    report = fuzz_sweep(5, maxoid=False)
    assert report.found
