"""Replay-to-anchor postmortems: the byte-identity acceptance tests.

A counterexample's black box must replay **byte-identically**: re-running
the recorded minimal scenario with ``halt_at=<anchor seq>`` reproduces
the exact event prefix (same events digest), halts at the same event,
and — for interleaved races — reproduces the same scheduler decision
digest, with the live world still standing for inspection. Both fuzz
drivers are pinned here, each against its canonical planted
vulnerability.
"""

import pytest

from repro.obs.artifacts import load_blackbox
from repro.fuzz.driver import fuzz_sweep
from repro.fuzz.driver import replay_to_anchor as replay_sequential
from repro.fuzz.interleave import interleave_sweep
from repro.fuzz.interleave import replay_to_anchor as replay_interleaved

pytestmark = [pytest.mark.recorder, pytest.mark.fuzz]


@pytest.fixture(scope="module")
def clipboard_counterexample():
    report = fuzz_sweep(10, planted="clipboard-isolation")
    assert report.found, "planted clipboard vuln not found"
    return report.counterexample


class TestSequentialReplay:
    def test_counterexample_carries_a_sealed_black_box(
        self, clipboard_counterexample
    ):
        box = clipboard_counterexample.blackbox
        assert box is not None
        assert box.trigger == "counterexample"
        assert box.events, "recording is empty"
        assert box.anchor_seq == box.events[-1].seq
        summary = clipboard_counterexample.to_dict()["blackbox"]
        assert summary["anchor_seq"] == box.anchor_seq
        assert summary["events_digest"] == box.events_digest()

    def test_replays_byte_identically_to_the_anchor(
        self, clipboard_counterexample
    ):
        box = clipboard_counterexample.blackbox
        halt = replay_sequential(clipboard_counterexample)
        try:
            assert halt.event.seq == box.anchor_seq
            assert halt.event.line() == box.events[-1].line()
            assert halt.events_digest() == box.events_digest()
            # The world is live: the device is still inspectable.
            assert halt.world.device is not None
            assert halt.recorder.halted_event is halt.event
        finally:
            halt.world.close()

    def test_replays_to_an_intermediate_anchor(self, clipboard_counterexample):
        box = clipboard_counterexample.blackbox
        assert len(box.events) >= 2, "need at least two events to pick a midpoint"
        mid = box.events[len(box.events) // 2 - 1].seq
        halt = replay_sequential(clipboard_counterexample, anchor_seq=mid)
        try:
            assert halt.event.seq == mid
            assert halt.events_digest() == box.events_digest(upto=mid)
        finally:
            halt.world.close()

    def test_sweep_writes_a_loadable_dump(self, tmp_path):
        path = str(tmp_path / "ce.jsonl")
        report = fuzz_sweep(
            10, planted="clipboard-isolation", blackbox_path=path
        )
        assert report.found
        box = report.counterexample.blackbox
        loaded = load_blackbox(path)
        assert loaded.trigger == "counterexample"
        assert loaded.anchor_seq == box.anchor_seq
        assert loaded.events_digest() == box.events_digest()


class TestInterleavedReplay:
    def test_race_black_box_replays_to_anchor_with_same_schedule(self):
        report = interleave_sweep(
            n_scenarios=20,
            schedules_per_scenario=6,
            planted="binder-guard-race",
        )
        assert report.found, "planted binder race not found"
        counterexample = report.counterexample
        box = counterexample.blackbox
        assert box is not None and box.trigger == "counterexample"
        halt = replay_interleaved(counterexample)
        try:
            assert halt.event.seq == box.anchor_seq
            assert halt.events_digest() == box.events_digest()
            assert (
                halt.recorder.schedule_digest()
                == box.metadata["schedule_digest"]
            )
        finally:
            halt.world.close()
