"""Counterexample packaging: render, JSON artifact, replay determinism.

The shrunk counterexample is the fuzzer's whole deliverable — these
tests pin its shape: the render names the seed and the violated rule,
the JSON artifact (what the CI fuzz lane uploads) round-trips
``to_dict()``, and two independent sweeps over the same seed range
produce byte-identical reports.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import fuzz_sweep
from repro.fuzz.harness import VICTIM_PACKAGE

pytestmark = pytest.mark.fuzz


@pytest.fixture(scope="module")
def report():
    return fuzz_sweep(40, planted="clipboard-isolation")


def test_render_names_seed_planted_mode_and_rule(report):
    assert report.found
    rendered = report.counterexample.render()
    assert f"seed={report.counterexample.seed}" in rendered
    assert "planted=clipboard-isolation" in rendered
    assert "minimal sequence" in rendered
    assert "S1" in rendered
    assert f"[Priv({VICTIM_PACKAGE})]" in rendered


def test_artifact_json_round_trips(tmp_path):
    artifact = tmp_path / "counterexample.json"
    found = fuzz_sweep(
        40, planted="clipboard-isolation", artifact_path=str(artifact)
    )
    assert found.found
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload == found.counterexample.to_dict()
    assert payload["planted"] == "clipboard-isolation"
    assert payload["maxoid"] is True
    assert payload["ops"]
    assert payload["violations"]
    assert payload["fingerprint"] == found.counterexample.fingerprint


def test_clean_sweep_writes_no_artifact(tmp_path):
    artifact = tmp_path / "counterexample.json"
    clean = fuzz_sweep(5, artifact_path=str(artifact))
    assert not clean.found
    assert not artifact.exists()


def test_sweeps_are_byte_identical_across_runs(report):
    again = fuzz_sweep(40, planted="clipboard-isolation")
    assert again.found
    assert again.counterexample.to_dict() == report.counterexample.to_dict()


def test_replay_reproduces_the_recorded_fingerprint(report):
    counterexample = report.counterexample
    assert counterexample.replay().fingerprint() == counterexample.fingerprint
