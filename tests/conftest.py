"""Shared fixtures: booted devices, installed app sets, fuzz profiles."""

from __future__ import annotations

import os

import pytest

from repro import Device
from repro.apps import install_standard_apps
from repro.faults import FAULTS
from repro.sched import SCHED

try:
    from hypothesis import HealthCheck, Phase, settings

    # The pinned CI fuzz profile: derandomized (fixed seed — a red run
    # reproduces with no flake surface), no deadline (simulated devices
    # pay a cold-start per example), example budget bounded but scalable
    # through FUZZ_EXAMPLES (tier-1 keeps the default; the CI fuzz lane
    # raises it). The planted-vulnerability positive controls disable the
    # shrink phase: the seeded driver does its own delta-debugging, so
    # hypothesis only needs to *find*, not minimize.
    settings.register_profile(
        "repro-ci",
        derandomize=True,
        deadline=None,
        max_examples=int(os.environ.get("FUZZ_EXAMPLES", "25")),
        stateful_step_count=25,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.filter_too_much,
            HealthCheck.data_too_large,
        ],
        print_blob=True,
    )
    settings.register_profile(
        "repro-ci-noshrink",
        settings.get_profile("repro-ci"),
        phases=(Phase.generate,),
    )
    settings.load_profile("repro-ci")
except ImportError:  # pragma: no cover - hypothesis is an extra
    pass


@pytest.fixture(autouse=True)
def _fault_plane_left_clean():
    """The fault plane is a process-wide singleton; no test may leak an
    armed point into the next one."""
    yield
    if FAULTS.enabled or FAULTS.schedule:
        FAULTS.reset()


@pytest.fixture(autouse=True)
def _scheduler_left_clean():
    """The deterministic scheduler is a process-wide singleton; a test
    that leaks an enabled reactor would turn every later kernel call
    into a cooperative yield on a dead scheduler."""
    yield
    assert not SCHED.enabled, "a test left the deterministic scheduler enabled"


@pytest.fixture
def device():
    """A Maxoid-enabled device."""
    return Device(maxoid_enabled=True)


@pytest.fixture
def stock_device():
    """The unmodified-Android baseline."""
    return Device(maxoid_enabled=False)


@pytest.fixture
def loaded_device(device):
    """Maxoid device with the standard app catalog installed and a small
    fake internet."""
    device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    device.network.publish("drive.google.com", "notes.txt", b"drive notes body")
    device.network.publish("example.com", "leaflet.pdf", b"%PDF public leaflet")
    apps = install_standard_apps(device)
    device.apps = apps
    return device


@pytest.fixture
def loaded_stock_device(stock_device):
    """Baseline device with the same apps and internet."""
    stock_device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    stock_device.network.publish("drive.google.com", "notes.txt", b"drive notes body")
    stock_device.network.publish("example.com", "leaflet.pdf", b"%PDF public leaflet")
    apps = install_standard_apps(stock_device)
    stock_device.apps = apps
    return stock_device
