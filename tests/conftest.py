"""Shared fixtures: booted devices and installed app sets."""

from __future__ import annotations

import pytest

from repro import Device
from repro.apps import install_standard_apps
from repro.faults import FAULTS


@pytest.fixture(autouse=True)
def _fault_plane_left_clean():
    """The fault plane is a process-wide singleton; no test may leak an
    armed point into the next one."""
    yield
    if FAULTS.enabled or FAULTS.schedule:
        FAULTS.reset()


@pytest.fixture
def device():
    """A Maxoid-enabled device."""
    return Device(maxoid_enabled=True)


@pytest.fixture
def stock_device():
    """The unmodified-Android baseline."""
    return Device(maxoid_enabled=False)


@pytest.fixture
def loaded_device(device):
    """Maxoid device with the standard app catalog installed and a small
    fake internet."""
    device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    device.network.publish("drive.google.com", "notes.txt", b"drive notes body")
    device.network.publish("example.com", "leaflet.pdf", b"%PDF public leaflet")
    apps = install_standard_apps(device)
    device.apps = apps
    return device


@pytest.fixture
def loaded_stock_device(stock_device):
    """Baseline device with the same apps and internet."""
    stock_device.network.publish("dropbox.com", "report.pdf", b"%PDF dropbox report")
    stock_device.network.publish("drive.google.com", "notes.txt", b"drive notes body")
    stock_device.network.publish("example.com", "leaflet.pdf", b"%PDF public leaflet")
    apps = install_standard_apps(stock_device)
    stock_device.apps = apps
    return stock_device
