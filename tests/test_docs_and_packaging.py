"""Documentation, packaging and doctest checks."""

import doctest
import importlib

import pytest

import repro


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.kernel.path"],
    )
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_lazy_device(self):
        import repro.core

        assert repro.core.Device is repro.Device
        with pytest.raises(AttributeError):
            repro.core.NoSuchThing  # noqa: B018

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.kernel",
            "repro.minisql",
            "repro.android",
            "repro.android.content",
            "repro.android.services",
            "repro.core",
            "repro.apps",
            "repro.workloads",
        ],
    )
    def test_every_package_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_classes_have_docstrings(self):
        from repro.core.cow import CowProxy
        from repro.core.branches import BranchManager
        from repro.kernel.aufs import AufsMount
        from repro.minisql import Database

        for cls in (CowProxy, BranchManager, AufsMount, Database):
            assert cls.__doc__
            for name in dir(cls):
                if name.startswith("_"):
                    continue
                member = getattr(cls, name)
                if not callable(member):
                    continue
                # A docstring may be inherited from the interface class
                # (e.g. AufsMount's overrides document on FilesystemAPI).
                documented = bool(member.__doc__) or any(
                    getattr(getattr(base, name, None), "__doc__", None)
                    for base in cls.__mro__[1:]
                )
                assert documented, (cls, name)


class TestRepoDocs:
    @pytest.mark.parametrize("filename", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_doc_files_exist_and_are_substantial(self, filename):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        path = root / filename
        assert path.exists()
        assert len(path.read_text()) > 2000

    def test_design_mentions_every_table_and_figure(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        design = (root / "DESIGN.md").read_text()
        for artifact in ["Table 1", "Table 2", "Table 3", "Table 4", "Table 5"]:
            assert artifact in design
        for figure in ["Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6"]:
            assert figure in design
