"""Binder delegate deadlines: bounded retry, backoff, AuditLog surface."""

from __future__ import annotations

import pytest

from repro.apps import install_full_corpus
from repro.apps.adversarial import interpreter
from repro.apps.email_app import PACKAGE as VICTIM_PACKAGE
from repro.core.device import Device
from repro.errors import DelegateTimeout
from repro.sched import SCHED

pytestmark = pytest.mark.sched


def _device_with_slow_service():
    """A Maxoid device plus a registered system service whose handler
    sleeps far past the delegate deadline on the virtual clock."""
    device = Device(maxoid_enabled=True)
    install_full_corpus(device)

    def slow_handler(transaction):
        SCHED.sleep(10_000.0)
        return "eventually"

    device.binder.register("service:molasses", slow_handler, is_system=True)
    return device


def _timeout_events(device):
    return [
        (e.details.get("attempt"), e.details.get("vclock"), e.message)
        for e in device.audit_log.events("timeout")
    ]


class TestDelegateDeadline:
    def test_delegate_call_times_out_with_bounded_retries(self):
        device = _device_with_slow_service()
        delegate = device.spawn(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)

        def call() -> str:
            try:
                return device.binder.transact(
                    delegate.process, "service:molasses", "nap"
                )
            except DelegateTimeout:
                return "gave-up"

        run = SCHED.run({"caller": call}, seed=0)
        assert run.results["caller"] == "gave-up"
        events = _timeout_events(device)
        # One record per attempt plus the final abandonment.
        assert len(events) == device.binder.delegate_retries + 2
        attempts = [attempt for attempt, _v, _m in events[:-1]]
        assert attempts == list(range(device.binder.delegate_retries + 1))
        assert "abandoned" in events[-1][2]
        # Virtual-clock stamps strictly increase across retries (the
        # abandonment record shares the final attempt's stamp).
        vclocks = [vclock for _a, vclock, _m in events]
        assert vclocks == sorted(vclocks)
        assert len(set(vclocks[:-1])) == len(vclocks) - 1

    def test_timeout_schedule_is_deterministic(self):
        stamps = []
        for _ in range(2):
            device = _device_with_slow_service()
            delegate = device.spawn(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)

            def call() -> None:
                with pytest.raises(DelegateTimeout):
                    device.binder.transact(
                        delegate.process, "service:molasses", "nap"
                    )

            SCHED.run({"caller": call}, seed=0)
            stamps.append(_timeout_events(device))
        assert stamps[0] == stamps[1]

    def test_plain_sender_pays_no_deadline(self):
        device = _device_with_slow_service()
        plain = device.spawn(interpreter.PACKAGE)

        def call() -> str:
            return device.binder.transact(plain.process, "service:molasses", "nap")

        run = SCHED.run({"caller": call}, seed=0)
        # The handler's sleep still happens (virtual clock jumps), but no
        # deadline interrupts a non-delegate sender.
        assert run.results["caller"] == "eventually"
        assert device.audit_log.events("timeout") == []

    def test_sequential_path_untouched(self):
        device = _device_with_slow_service()
        delegate = device.spawn(interpreter.PACKAGE, initiator=VICTIM_PACKAGE)
        # Off-scheduler, SCHED.sleep is a no-op and no deadline machinery
        # engages: the call just completes.
        reply = device.binder.transact(delegate.process, "service:molasses", "nap")
        assert reply == "eventually"
        assert device.audit_log.events("timeout") == []
