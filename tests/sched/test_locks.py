"""RWLock semantics, the lock-order checker, and race candidates."""

from __future__ import annotations

import pytest

from repro.errors import DelegateTimeout
from repro.sched import SCHED, DeadlockError, RWLock

pytestmark = pytest.mark.sched


class TestOutsideScheduler:
    def test_locks_are_noops_off_plane(self):
        lock = RWLock("free")
        with lock.write():
            with lock.read():
                pass
        assert lock.holders() == []


class TestExclusion:
    def test_writer_excludes_foreign_reader(self):
        lock = RWLock("L")
        events = []

        def writer() -> None:
            with lock.write():
                events.append("w-acq")
                SCHED.yield_point("hold")
                events.append("w-still-held")
            events.append("w-released")

        def reader() -> None:
            with lock.read():
                events.append("r-acq")

        # Force: writer takes the lock, reader attempts mid-hold.
        SCHED.run(
            [("t1w", writer), ("t2r", reader)],
            replay=["t1w", "t2r", "t1w", "t1w", "t2r", "t2r"],
        )
        assert events.index("r-acq") > events.index("w-released")

    def test_readers_share_writer_waits(self):
        lock = RWLock("L")
        events = []

        def reader(name: str):
            def fn() -> None:
                with lock.read():
                    events.append(f"{name}-acq")
                    SCHED.yield_point("hold")
                events.append(f"{name}-rel")

            return fn

        def writer() -> None:
            with lock.write():
                events.append("w-acq")

        SCHED.run(
            [("r1", reader("r1")), ("r2", reader("r2")), ("w3", writer)],
            replay=["r1", "r2", "w3", "r1", "r2", "w3", "r1", "r2", "w3"],
        )
        # Both readers overlapped; the writer only got in after both left.
        assert events.index("r2-acq") < events.index("r1-rel")
        assert events.index("w-acq") > events.index("r1-rel")
        assert events.index("w-acq") > events.index("r2-rel")

    def test_reentrant_and_sole_reader_upgrade(self):
        lock = RWLock("L")

        def task() -> str:
            with lock.write():
                with lock.write():  # write reentrancy
                    with lock.read():  # read under own write
                        pass
            with lock.read():
                with lock.write():  # sole-reader upgrade
                    pass
            return "ok"

        run = SCHED.run({"t": task}, seed=0)
        assert run.results["t"] == "ok"
        assert lock.holders() == []


class TestDeadlocks:
    def _abba(self):
        a, b = RWLock("A"), RWLock("B")

        def t1() -> None:
            with a.write():
                SCHED.yield_point("t1-holds-A")
                with b.write():
                    pass

        def t2() -> None:
            with b.write():
                SCHED.yield_point("t2-holds-B")
                with a.write():
                    pass

        return t1, t2

    def test_abba_wedge_raises_deadlock_error(self):
        t1, t2 = self._abba()
        with pytest.raises(DeadlockError) as err:
            SCHED.run([("t1", t1), ("t2", t2)], replay=["t1", "t2", "t1", "t2"])
        assert "deadlock" in str(err.value)
        assert not SCHED.enabled
        # The wedge's order graph names the cycle.
        assert ("A", "B") in SCHED.lock_order.potential_deadlocks()

    def test_cycle_flagged_even_when_schedule_does_not_wedge(self):
        t1, t2 = self._abba()
        # t1 runs to completion before t2 starts: no wedge, but the
        # opposite-order acquisitions still close a lock-order cycle.
        run = SCHED.run([("t1", t1), ("t2", t2)], replay=["t1"] * 8 + ["t2"] * 8)
        assert run.errors == {}
        assert run.lock_order.potential_deadlocks() == [("A", "B")]
        assert "POTENTIAL DEADLOCK" in run.lock_order.report()


class TestRaceCandidates:
    def test_unlocked_shared_write_is_flagged(self):
        def writer() -> None:
            SCHED.yield_point("touch", resource="shared-thing", rw="w")

        def reader() -> None:
            SCHED.yield_point("touch", resource="shared-thing", rw="r")

        run = SCHED.run({"tw": writer, "tr": reader}, seed=0)
        assert ("shared-thing", "tr", "tw") in run.race_candidates

    def test_common_lock_suppresses_the_flag(self):
        guard = RWLock("guard")

        def writer() -> None:
            with guard.write():
                SCHED.yield_point("touch", resource="shared-thing", rw="w")

        def reader() -> None:
            with guard.read():
                SCHED.yield_point("touch", resource="shared-thing", rw="r")

        run = SCHED.run({"tw": writer, "tr": reader}, seed=0)
        assert run.race_candidates == []


class TestDeadlines:
    def test_blocked_acquire_times_out_on_virtual_deadline(self):
        lock = RWLock("L")

        def holder() -> None:
            with lock.write():
                SCHED.sleep(10_000.0)

        def waiter() -> str:
            try:
                with SCHED.deadline(50.0):
                    with lock.read():
                        return "acquired"
            except DelegateTimeout:
                return "timed-out"

        run = SCHED.run(
            [("holder", holder), ("waiter", waiter)], replay=["holder", "waiter"]
        )
        assert run.results["waiter"] == "timed-out"
        assert run.results["holder"] is None  # ran to completion
        assert lock.holders() == []
