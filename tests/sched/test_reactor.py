"""The deterministic reactor: seeds, digests, replay, virtual time."""

from __future__ import annotations

import pytest

from repro.sched import SCHED, schedule_digest

pytestmark = pytest.mark.sched


def _spinner(name: str, n: int):
    def fn() -> str:
        for i in range(n):
            SCHED.yield_point(f"{name}.{i}")
        return name

    return fn


def _three_tasks():
    return {"a": _spinner("a", 5), "b": _spinner("b", 5), "c": _spinner("c", 5)}


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        run1 = SCHED.run(_three_tasks(), seed=42)
        run2 = SCHED.run(_three_tasks(), seed=42)
        assert run1.decisions == run2.decisions
        assert run1.digest() == run2.digest()
        assert run1.clock == run2.clock

    def test_distinct_seeds_distinct_digests(self):
        digests = {SCHED.run(_three_tasks(), seed=s).digest() for s in range(6)}
        assert len(digests) > 1

    def test_digest_is_over_the_decision_lines(self):
        run = SCHED.run(_three_tasks(), seed=7)
        assert run.digest() == schedule_digest(run.decisions)
        assert run.schedule() == [task for _s, task, _p in run.decisions]

    def test_results_collected_per_task(self):
        run = SCHED.run(_three_tasks(), seed=0)
        assert run.results == {"a": "a", "b": "b", "c": "c"}
        assert run.errors == {}
        assert run.divergences == 0


class TestReplay:
    def test_recorded_schedule_replays_identically(self):
        recorded = SCHED.run(_three_tasks(), seed=1234)
        replayed = SCHED.run(_three_tasks(), replay=recorded.schedule())
        assert replayed.decisions == recorded.decisions
        assert replayed.digest() == recorded.digest()
        assert replayed.divergences == 0
        assert replayed.seed is None  # replay runs are schedule-identified

    def test_truncated_replay_falls_back_deterministically(self):
        recorded = SCHED.run(_three_tasks(), seed=1234)
        truncated = recorded.schedule()[: len(recorded.schedule()) // 2]
        replay1 = SCHED.run(_three_tasks(), replay=truncated)
        replay2 = SCHED.run(_three_tasks(), replay=truncated)
        assert replay1.divergences > 0
        # the fallback itself is deterministic: both replays agree.
        assert replay1.decisions == replay2.decisions

    def test_foreign_names_in_replay_are_divergences(self):
        recorded = SCHED.run(_three_tasks(), seed=9)
        bogus = ["nope"] * len(recorded.schedule())
        replayed = SCHED.run(_three_tasks(), replay=bogus)
        assert replayed.divergences == len(replayed.decisions)
        assert set(replayed.results) == {"a", "b", "c"}


class TestVirtualClock:
    def test_clock_ticks_per_decision(self):
        run = SCHED.run({"solo": _spinner("solo", 3)}, seed=0)
        assert run.clock == pytest.approx(len(run.decisions) * SCHED.tick_ms)

    def test_sleep_jumps_the_clock(self):
        def sleeper() -> float:
            SCHED.sleep(500.0)
            return SCHED.clock

        run = SCHED.run({"z": sleeper}, seed=0)
        assert run.results["z"] >= 500.0
        assert run.clock >= 500.0

    def test_sleepers_wake_in_deadline_order(self):
        order = []

        def napper(name: str, ms: float):
            def fn() -> None:
                SCHED.sleep(ms)
                order.append(name)

            return fn

        SCHED.run({"late": napper("late", 300.0), "soon": napper("soon", 10.0)}, seed=3)
        assert order == ["soon", "late"]


class TestErrors:
    def test_task_errors_reraise_by_default(self):
        def boom() -> None:
            SCHED.yield_point("pre")
            raise ValueError("kapow")

        with pytest.raises(ValueError, match="kapow"):
            SCHED.run({"bad": boom}, seed=0)
        assert not SCHED.enabled

    def test_reraise_false_reports_errors_in_run(self):
        def boom() -> None:
            raise ValueError("kapow")

        run = SCHED.run({"bad": boom, "ok": _spinner("ok", 2)}, seed=0, reraise=False)
        assert isinstance(run.errors["bad"], ValueError)
        assert run.results == {"ok": "ok"}

    def test_scheduler_is_not_reentrant(self):
        def nested() -> None:
            SCHED.run({"inner": lambda: None}, seed=0)

        with pytest.raises(RuntimeError, match="not reentrant"):
            SCHED.run({"outer": nested}, seed=0)
        assert not SCHED.enabled

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SCHED.run([("t", lambda: None), ("t", lambda: None)], seed=0)

    def test_livelock_guard_trips(self):
        def spin_forever() -> None:
            while True:
                SCHED.yield_point("spin")

        with pytest.raises(RuntimeError, match="decisions"):
            SCHED.run({"spin": spin_forever}, seed=0, max_decisions=50)
        assert not SCHED.enabled
