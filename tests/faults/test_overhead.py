"""Disabled fault-plane fast-path overhead regression.

Same contract and same measurement discipline as
``tests/obs/test_overhead.py``: the fault gates are a single ``if
_FAULTS.enabled:`` attribute check on each mutating hot path, so with the
plane disarmed the instrumented entry points must cost no measurable
overhead against the ungated implementation methods. The loops are
interleaved round by round and compared on best-of-N minima so scheduler
and allocator noise (which only ever adds time) cancels out of both
sides.

Note the gated loop here carries *both* gates — observability and faults
— so this bound also covers their combined disabled cost.
"""

import gc
import time

import pytest

from repro import AndroidManifest, Device
from repro.faults import FAULTS
from repro.obs.artifacts import bench_json_target, update_bench_json

pytestmark = pytest.mark.faults

APP = "com.faults.overhead"

# Generous CI bound over the ~5% nominal cost of the enabled-flag checks.
MAX_OVERHEAD_PCT = 35.0
OPS_PER_TRIAL = 40
ROUNDS = 120


@pytest.fixture
def api():
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=APP), object())
    api = device.spawn(APP)
    api.sys.makedirs("/storage/sdcard/bench")
    api.sys.write_file("/storage/sdcard/bench/file.bin", b"d" * 4096)
    return api


def test_disabled_fault_gate_write_overhead(api):
    assert not FAULTS.enabled
    sys = api.sys
    payload = b"w" * 4096

    def gated_loop():
        for _ in range(OPS_PER_TRIAL):
            sys.write_file("/storage/sdcard/bench/file.bin", payload)
            sys.read_file("/storage/sdcard/bench/file.bin")

    def ungated_loop():
        # The pre-fault-plane code path: implementation methods called
        # directly, skipping both the faults gate and the obs gate on
        # read/write — exactly the code the seed ran.
        for _ in range(OPS_PER_TRIAL):
            sys._write_file_impl("/storage/sdcard/bench/file.bin", payload)
            sys._read_file_impl("/storage/sdcard/bench/file.bin")

    # Warm caches and any lazily-built state on both paths.
    gated_loop()
    ungated_loop()

    best_gated = best_ungated = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            start = time.perf_counter()
            ungated_loop()
            best_ungated = min(best_ungated, time.perf_counter() - start)
            start = time.perf_counter()
            gated_loop()
            best_gated = min(best_gated, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()

    overhead = (best_gated - best_ungated) / best_ungated * 100.0
    target = bench_json_target()
    if target:
        update_bench_json(
            target,
            "gate_overhead_faults",
            {
                "disabled_pct": round(overhead, 3),
                "budget_pct": MAX_OVERHEAD_PCT,
                "best_gated_s": best_gated,
                "best_ungated_s": best_ungated,
            },
        )
    assert overhead < MAX_OVERHEAD_PCT, (
        f"disabled fault-plane fast path costs {overhead:.1f}% over the "
        f"ungated loop (budget {MAX_OVERHEAD_PCT}%; nominal target <5%)"
    )


def test_disabled_plane_records_nothing(api):
    assert not FAULTS.enabled
    api.sys.write_file("/storage/sdcard/bench/silent.bin", b"x")
    api.sys.read_file("/storage/sdcard/bench/silent.bin")
    assert FAULTS.schedule == []
    assert FAULTS.injection_log == []
    assert FAULTS.hits("vfs.write") == 0
