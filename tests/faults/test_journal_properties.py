"""Property tests for the crash-recovery journals.

Two contracts, explored with Hypothesis over payloads and crash points:

- **Idempotent replay** — ``Device.recover()`` twice is exactly once: the
  second pass replays nothing and the recovered state does not change.
- **No duplication** — a crash *after* the commit applied but *before*
  the journal truncated (the classic double-apply window) never yields a
  duplicate file or a duplicate provider row on replay, because the
  journal entry carries the destination (and, for COW rows, the
  pre-allocated public key).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import AndroidManifest, Device
from repro.android.content.provider import ContentValues
from repro.android.uri import Uri
from repro.faults import FAULTS, SimulatedCrash, crash_at

pytestmark = pytest.mark.faults

A = "com.props.initiator"
B = "com.props.helper"

WORDS = Uri.content("user_dictionary", "words")

# Crash points along the volatile file commit, in execution order. Each
# leaves the journal in a different state: torn entry, complete entry with
# no destination, complete entry with the destination already written.
FILE_COMMIT_POINTS = ("vol.commit.journal", "vol.commit.apply", "vol.commit.truncate")


class Nop:
    def main(self, api, intent):
        return None


def _fresh_device():
    # Each Hypothesis example is a fresh run; the per-test autouse reset
    # fires too late for that, so clear the plane here.
    FAULTS.reset()
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    return device


def _crashed_file_commit(data, point):
    """Stage one volatile file and crash its commit at ``point``."""
    device = _fresh_device()
    delegate = device.spawn(B, initiator=A)
    delegate.write_external("doc.bin", data)
    initiator = device.spawn(A)
    FAULTS.arm(point, crash_at())
    with pytest.raises(SimulatedCrash):
        initiator.volatile.commit("/storage/sdcard/tmp/doc.bin")
    return device, initiator


def _external_state(api):
    """(names at the external root, committed file bytes or None)."""
    names = sorted(api.sys.listdir("/storage/sdcard"))
    content = None
    if api.sys.exists("/storage/sdcard/doc.bin"):
        content = api.sys.read_file("/storage/sdcard/doc.bin")
    return names, content


@settings(max_examples=12, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=256),
    point=st.sampled_from(FILE_COMMIT_POINTS),
)
def test_recovering_twice_is_recovering_once(data, point):
    device, initiator = _crashed_file_commit(data, point)
    first = device.recover(validate=False)
    assert first.file_commits_replayed + first.file_commits_rolled_back == 1
    assert len(device.commit_journal) == 0
    state_after_first = _external_state(initiator)
    second = device.recover(validate=False)
    assert second.file_commits_replayed == 0
    assert second.file_commits_rolled_back == 0
    assert _external_state(initiator) == state_after_first


@settings(max_examples=12, deadline=None)
@given(data=st.binary(min_size=1, max_size=256))
def test_crash_before_truncate_never_duplicates_the_file(data):
    # The destination write already happened; the journal entry is still
    # pending, so recovery replays it — onto the same path, same bytes.
    device, initiator = _crashed_file_commit(data, "vol.commit.truncate")
    report = device.recover(validate=False)
    assert report.file_commits_replayed == 1
    names, content = _external_state(initiator)
    assert names.count("doc.bin") == 1
    assert content == data
    # The volatile source survives too (commit is a copy, not a move).
    assert initiator.volatile.read("/storage/sdcard/tmp/doc.bin") == data


@settings(max_examples=10, deadline=None)
@given(
    words=st.lists(
        st.text(alphabet="abcdefghij", min_size=1, max_size=8),
        min_size=1,
        max_size=5,
        unique=True,
    )
)
def test_cow_commit_replay_never_duplicates_rows(words):
    # A delegate inserts rows; the initiator's commit crashes after the
    # primary-table apply, before the journal rows clear. Replay must
    # reuse the pre-allocated public keys, not mint duplicates.
    device = _fresh_device()
    delegate = device.spawn(B, initiator=A)
    for word in words:
        delegate.insert(WORDS, ContentValues({"word": word}))
    proxy = device.user_dictionary.proxy
    volatile = proxy.volatile_rows("words", A)
    pk_index = [c.lower() for c in volatile.columns].index("_id")
    row_ids = [row[pk_index] for row in volatile.rows]
    assert len(row_ids) == len(words)

    FAULTS.arm("cow.delta_commit.truncate", crash_at())
    with pytest.raises(SimulatedCrash):
        proxy.commit_volatile_batch("words", A, row_ids)
    first = device.recover(validate=False)
    assert first.cow_rows_replayed == len(words)

    committed = proxy.db.execute("SELECT word FROM words")
    assert sorted(row[0] for row in committed.rows) == sorted(words)
    second = device.recover(validate=False)
    assert second.cow_rows_replayed == 0 and second.cow_rows_rolled_back == 0
    assert len(proxy.db.execute("SELECT word FROM words").rows) == len(words)
