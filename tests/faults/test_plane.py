"""Unit tests for the fault plane: arming, policies, the schedule, and
the byte-identical-reproduction contract."""

import pytest

from repro import AndroidManifest, Device
from repro.errors import InjectedFault, ReadOnlyFilesystem, ReproError
from repro.faults import (
    FAULT_POINTS,
    FAULTS,
    FaultPlane,
    SimulatedCrash,
    UnknownFaultPoint,
    crash_at,
    fail_nth,
    fail_prob,
    fail_with,
)

pytestmark = pytest.mark.faults

A = "com.faults.initiator"
B = "com.faults.helper"


class Nop:
    def main(self, api, intent):
        return None


# ----------------------------------------------------------------------
# Arming and the registry
# ----------------------------------------------------------------------

class TestArming:
    def test_plane_starts_disabled(self):
        assert FaultPlane().enabled is False

    def test_arming_unknown_point_is_an_error(self):
        plane = FaultPlane()
        with pytest.raises(UnknownFaultPoint):
            plane.arm("vfs.no_such_point", fail_nth(1))

    def test_arming_needs_a_policy(self):
        plane = FaultPlane()
        with pytest.raises(ValueError):
            plane.arm("vfs.write")

    def test_arm_enables_and_disarm_disables(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(1))
        assert plane.enabled and plane.armed_points() == ["vfs.write"]
        plane.disarm("vfs.write")
        assert not plane.enabled and plane.armed_points() == []

    def test_disarming_one_of_two_points_stays_enabled(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(1)).arm("mounts.resolve", fail_nth(1))
        plane.disarm("vfs.write")
        assert plane.enabled and plane.armed_points() == ["mounts.resolve"]

    def test_scope_always_leaves_the_plane_clean(self):
        plane = FaultPlane()
        with pytest.raises(InjectedFault):
            with plane.scope():
                plane.arm("vfs.write", fail_nth(1))
                plane.hit("vfs.write")
        assert not plane.enabled
        assert plane.schedule == [] and plane.injection_log == []

    def test_every_registered_point_names_its_layer(self):
        # The point's prefix is the span-taxonomy layer; the sweep's
        # ">= 4 layers" coverage claim rests on this.
        layers = {point.split(".")[0] for point in FAULT_POINTS}
        assert {"vfs", "aufs", "mounts", "binder", "am", "zygote", "cow", "vol"} <= layers


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

class TestPolicies:
    def test_fail_nth_fires_exactly_once_at_k(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(3))
        plane.hit("vfs.write")
        plane.hit("vfs.write")
        with pytest.raises(InjectedFault):
            plane.hit("vfs.write")
        plane.hit("vfs.write")  # k+1 passes again
        assert plane.hits("vfs.write") == 4

    def test_fail_nth_substitutes_the_given_error_class(self):
        plane = FaultPlane()
        plane.arm("aufs.copy_up", fail_nth(1, ReadOnlyFilesystem))
        with pytest.raises(ReadOnlyFilesystem):
            plane.hit("aufs.copy_up")

    def test_fail_with_error_instance_is_raised_verbatim(self):
        plane = FaultPlane()
        marker = ReadOnlyFilesystem("the store went away")
        plane.arm("aufs.copy_up", fail_with(marker))
        with pytest.raises(ReadOnlyFilesystem) as excinfo:
            plane.hit("aufs.copy_up")
        assert excinfo.value is marker

    def test_fail_with_fires_on_every_hit(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_with(InjectedFault))
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plane.hit("vfs.write")

    def test_crash_at_raises_simulated_crash_with_point_and_hit(self):
        plane = FaultPlane()
        plane.arm("vol.commit", crash_at(nth=2))
        plane.hit("vol.commit")
        with pytest.raises(SimulatedCrash) as excinfo:
            plane.hit("vol.commit")
        assert excinfo.value.point == "vol.commit"
        assert excinfo.value.hit == 2

    def test_simulated_crash_is_not_catchable_as_exception(self):
        # The whole design rests on this: `except Exception` in simulated
        # code must not swallow a crash.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_first_armed_policy_wins(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(1, ReadOnlyFilesystem), crash_at(nth=1))
        with pytest.raises(ReadOnlyFilesystem):
            plane.hit("vfs.write")

    def test_fail_prob_is_a_pure_function_of_seed_and_hit_order(self):
        def decisions(seed):
            plane = FaultPlane()
            plane.arm("vfs.write", fail_prob(0.5, seed=seed))
            fired = []
            for index in range(64):
                try:
                    plane.hit("vfs.write")
                except InjectedFault:
                    fired.append(index)
            return fired

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_policy_argument_validation(self):
        with pytest.raises(ValueError):
            fail_nth(0)
        with pytest.raises(ValueError):
            crash_at(0)
        with pytest.raises(ValueError):
            fail_prob(1.5, seed=1)
        with pytest.raises(TypeError):
            fail_with("not an exception")


# ----------------------------------------------------------------------
# Schedule and injection log
# ----------------------------------------------------------------------

class TestSchedule:
    def test_schedule_records_every_consult_and_log_only_fired(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(2))
        plane.hit("vfs.write", path="/a")
        with pytest.raises(InjectedFault):
            plane.hit("vfs.write", path="/b")
        assert [s[2] for s in plane.schedule] == ["pass", "raise:InjectedFault"]
        assert len(plane.injection_log) == 1
        entry = plane.injection_log[0]
        assert entry["point"] == "vfs.write"
        assert entry["hit"] == 2
        assert entry["ctx"] == {"path": "/b"}
        assert entry["policy"] == "fail_nth(2)"

    def test_crash_outcome_is_tagged_crash(self):
        plane = FaultPlane()
        plane.arm("zygote.fork", crash_at())
        with pytest.raises(SimulatedCrash):
            plane.hit("zygote.fork")
        assert plane.schedule[-1][2] == "crash"

    def test_schedule_bytes_roundtrip(self):
        plane = FaultPlane()
        plane.arm("vfs.write", fail_nth(2))
        plane.hit("vfs.write")
        with pytest.raises(InjectedFault):
            plane.hit("vfs.write")
        assert plane.schedule_bytes() == b"1 vfs.write pass\n2 vfs.write raise:InjectedFault"


# ----------------------------------------------------------------------
# End-to-end determinism: same seed => byte-identical fault schedule
# ----------------------------------------------------------------------

def _run_seeded_workload(seed):
    """A small device workload with probabilistic faults armed on two
    layers; returns the plane's serialized schedule."""
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=A), Nop())
    device.install(AndroidManifest(package=B), Nop())
    with FAULTS.scope():
        FAULTS.arm("vfs.write", fail_prob(0.25, seed=seed))
        FAULTS.arm("mounts.resolve", fail_prob(0.02, seed=seed + 1))
        initiator = device.spawn(A)
        delegate = device.spawn(B, initiator=A)
        for index in range(40):
            for api in (initiator, delegate):
                try:
                    api.write_external(f"w{index}.txt", b"x" * 32)
                except ReproError:
                    pass  # an injected fault ends this op, not the workload
        return FAULTS.schedule_bytes()


def test_same_seed_produces_byte_identical_schedule():
    first = _run_seeded_workload(1234)
    second = _run_seeded_workload(1234)
    assert first and first == second


def test_different_seed_produces_a_different_schedule():
    assert _run_seeded_workload(1234) != _run_seeded_workload(4321)
