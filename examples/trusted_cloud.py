#!/usr/bin/env python
"""The trusted-cloud extension (paper section 2.4's πBox sketch).

By default Maxoid cuts delegates off the network entirely, which is why 3
of the paper's 77 studied apps (DocuSign-style services) cannot run as
delegates. The paper sketches the fix: host app backends on a trusted
cloud that continues the confinement server-side. This reproduction
implements that sketch; the script shows a signature service working as a
delegate, with its uploads confined to the initiator's domain.

Run: ``python examples/trusted_cloud.py``
"""

from repro import AndroidManifest, Device, Intent
from repro.android.intents import IntentFilter
from repro.errors import NetworkUnreachable

EMAIL = "com.android.email"
DOCUSIGN = "com.docusign.ink"
BACKEND = "api.docusign.example"


class EmailStub:
    def main(self, api, intent):
        return None


class SignatureService:
    """A DocuSign-like app: signing requires a backend round trip."""

    def main(self, api, intent):
        document = api.sys.read_file(intent.extras["path"])
        socket = api.connect(BACKEND)          # fails for plain delegates!
        socket.put("to-sign.pdf", document)
        socket.send(document)
        signed = socket.fetch("to-sign.pdf") + b" [SIGNED]"
        api.write_external("DocuSign/signed.pdf", signed)
        return len(signed)


def main() -> None:
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package=EMAIL), EmailStub())
    device.install(
        AndroidManifest(
            package=DOCUSIGN, handles=[IntentFilter(actions=[Intent.ACTION_VIEW])]
        ),
        SignatureService(),
    )
    email = device.spawn(EMAIL)
    contract = email.write_internal("attachments/contract.pdf", b"%PDF the contract")

    # Without the extension: the delegate cannot reach its backend.
    intent = Intent(Intent.ACTION_VIEW, extras={"path": contract})
    intent.add_flag(Intent.FLAG_MAXOID_DELEGATE)
    try:
        device.am.start_activity(email.process, intent)
    except NetworkUnreachable:
        print("without trusted cloud: signing fails (ENETUNREACH) — the paper's 3/77")

    # Enable the extension and register the backend.
    cloud = device.network.enable_trusted_cloud()
    cloud.register_backend(DOCUSIGN, BACKEND)
    invocation = device.am.start_activity(email.process, intent)
    print(f"with trusted cloud: signed {invocation.result} bytes as "
          f"{invocation.process.context}")

    # The contract reached only the domain-confined backend store.
    print("leaked to the open internet?",
          device.network.leaked_to_network(b"the contract"))
    print("held in Email's cloud domain?",
          cloud.domain_received(BACKEND, EMAIL, b"the contract"))

    # And the signed copy is in Vol(Email), not public.
    print("signed file in Vol(Email):", email.volatile.list_files())
    bystander = device.spawn(DOCUSIGN)
    print("signed file public?", bystander.sys.exists("/storage/sdcard/DocuSign/signed.pdf"))


if __name__ == "__main__":
    main()
