#!/usr/bin/env python
"""Incognito downloads (paper sections 2.2.IV and 7.1).

Stock incognito mode forgets your *history* but a download still lands on
public storage and in the public Downloads provider. With Maxoid, the
paper's one-line Browser change stores incognito downloads in the
Browser's volatile state; tapping the notification opens the viewer as the
Browser's delegate; Clear-Vol + Clear-Priv erase the whole session —
including the QR scanner that provided the URL.

Run: ``python examples/incognito_browser.py``
"""

from repro import Device, Intent
from repro.android.uri import Uri
from repro.apps import BarcodeScannerApp, BrowserApp, PdfViewerApp


def main() -> None:
    device = Device(maxoid_enabled=True)
    device.network.publish("example.com", "sensitive-report.pdf", b"%PDF sensitive")
    browser_app = BrowserApp.install(device)
    PdfViewerApp.install(device)
    scanner_app = BarcodeScannerApp.install(device)

    browser = device.spawn(BrowserApp.BUILD.package)

    # The URL arrives from a QR code, scanned by the scanner running as the
    # Browser's delegate (started from the Launcher, section 6.3).
    scan = device.launch_as_delegate(
        BarcodeScannerApp.BUILD.package,
        BrowserApp.BUILD.package,
        Intent(Intent.ACTION_SCAN, extras={"qr_payload": "example.com/sensitive-report.pdf"}),
    )
    print(f"QR scanned by {scan.process.context}: {scan.result['text']}")

    # Incognito download: one flag (the paper's one-line change).
    download_id = browser_app.download(
        browser, "https://example.com/sensitive-report.pdf", "sensitive-report.pdf",
        incognito=True,
    )
    device.run_downloads()
    print(f"download {download_id} complete:",
          device.download_manager.succeeded(browser.process, download_id, volatile=True))

    # Publicly: no file, no Downloads row.
    bystander = device.spawn(PdfViewerApp.BUILD.package)
    print("bystander sees the file?",
          bystander.sys.exists("/storage/sdcard/Download/sensitive-report.pdf"))
    print("bystander sees a Downloads row?",
          bool(bystander.query(Uri.content("downloads", "all_downloads")).rows))

    # Tapping the notification opens the viewer as the Browser's delegate.
    note = device.downloads.notifications[-1]
    invocation = browser_app.open_download(browser, note)
    print(f"notification opened by {invocation.process.context}, "
          f"{invocation.result['bytes']} bytes rendered")

    # End of session: wipe everything.
    device.launcher.clear_vol(BrowserApp.BUILD.package)
    device.launcher.clear_priv(BrowserApp.BUILD.package)
    print("after Clear-Vol/Clear-Priv:")
    print("  scanner history:", scanner_app.recent_scans(device.spawn(BarcodeScannerApp.BUILD.package)))
    print("  viewer recents:", device.spawn(PdfViewerApp.BUILD.package).prefs.get("recent_files"))
    fresh_delegate = device.spawn(PdfViewerApp.BUILD.package, initiator=BrowserApp.BUILD.package)
    print("  download still in Vol?",
          fresh_delegate.sys.exists("/storage/sdcard/Download/sensitive-report.pdf"))


if __name__ == "__main__":
    main()
