#!/usr/bin/env python
"""Securing Email attachments (paper sections 2.2.III and 7.1).

Stock Android's per-URI grant lets a viewer open exactly one attachment —
but nothing stops the viewer from *copying* it anywhere. This script shows
the attack on a stock device, then the same flow under Maxoid where the
viewer runs as Email's delegate and every trace is confined.

Run: ``python examples/email_attachments.py``
"""

from repro import Device
from repro.apps import EmailApp, PdfViewerApp, BarcodeScannerApp
from repro.core.audit import find_marker_in_files

SECRET = b"MARKER-salary-data"


def run(maxoid: bool) -> None:
    banner = "Maxoid" if maxoid else "stock Android"
    print(f"--- {banner} ---")
    device = Device(maxoid_enabled=maxoid)
    email_app = EmailApp.install(device)
    PdfViewerApp.install(device)
    BarcodeScannerApp.install(device)

    email = device.spawn(EmailApp.BUILD.package)
    attachment_id = email_app.receive_attachment(email, "salaries.pdf", b"%PDF " + SECRET)
    invocation = email_app.view_attachment(email, attachment_id)
    print(f"  viewer ran as: {invocation.process.context}")

    # Audit: can an unrelated app find the secret on public storage?
    bystander = device.spawn(BarcodeScannerApp.BUILD.package)
    hits = find_marker_in_files(bystander, SECRET, roots=["/storage/sdcard"])
    print(f"  secret visible to a bystander: {hits or 'nowhere'}")

    # The viewer's recent-files list when the user next opens it normally:
    viewer = device.spawn(PdfViewerApp.BUILD.package)
    print(f"  viewer's recents when run normally: {viewer.prefs.get('recent_files')}")

    if maxoid:
        # Email can inspect what the viewer left behind, then discard it.
        print(f"  Vol(Email): {email.volatile.list_files()}")
        device.clear_volatile(EmailApp.BUILD.package)
        print("  Vol(Email) cleared")


def main() -> None:
    run(maxoid=False)
    run(maxoid=True)


if __name__ == "__main__":
    main()
