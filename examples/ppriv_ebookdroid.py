#!/usr/bin/env python
"""EBookDroid's persistent private state (paper sections 3.2 and 7.1).

A Maxoid-aware delegate can keep useful state across invocations for the
same initiator even though its normal private state gets re-forked. This
script replays Figure 2's lifecycle with the modified EBookDroid: a PDF
viewed on behalf of Email stays in the recents list across re-forks — but
only when EBookDroid runs on behalf of Email.

Run: ``python examples/ppriv_ebookdroid.py``
"""

from repro import Device, Intent
from repro.apps import EBookDroidApp, EmailApp

EMAIL = EmailApp.BUILD.package
EBOOK = EBookDroidApp.BUILD.package


def main() -> None:
    device = Device(maxoid_enabled=True)
    email_app = EmailApp.install(device)
    ebook_app = EBookDroidApp.install(device)

    # An attachment arrives.
    email = device.spawn(EMAIL)
    attachment_id = email_app.receive_attachment(email, "novel.pdf", b"%PDF a novel")
    path = f"/data/data/{EMAIL}/attachments/{attachment_id}/novel.pdf"

    # EBookDroid opens it as Email's delegate: the entry goes to pPriv.
    delegate = device.spawn(EBOOK, initiator=EMAIL)
    result = ebook_app.main(delegate, Intent(Intent.ACTION_VIEW, extras={"path": path}))
    print("recents as Email's delegate:", result["recent"])

    # The user reads an ordinary book normally: nPriv gets a new entry,
    # and Priv(EBookDroid) diverges — the next delegate run re-forks nPriv.
    normal = device.spawn(EBOOK)
    normal.write_external("Books/hobby.pdf", b"%PDF hobby")
    ebook_app.main(
        normal, Intent(Intent.ACTION_VIEW, extras={"path": "/storage/sdcard/Books/hobby.pdf"})
    )
    print("recents when running normally:", ebook_app.recent_list(device.spawn(EBOOK)))

    # Back on behalf of Email: nPriv was re-forked (it now contains the
    # hobby book from the normal run) AND the pPriv entry survived.
    delegate2 = device.spawn(EBOOK, initiator=EMAIL)
    print("recents as Email's delegate again:", ebook_app.recent_list(delegate2))

    # A different initiator gets isolated persistent state.
    device.install(
        __import__("repro").AndroidManifest(package="com.other.app"),
        type("Nop", (), {"main": lambda self, api, intent: None})(),
    )
    for_other = device.spawn(EBOOK, initiator="com.other.app")
    print("recents on behalf of another app:", ebook_app.recent_list(for_other))

    # And Email can make the viewer forget everything.
    device.clear_delegate_priv(EMAIL)
    delegate3 = device.spawn(EBOOK, initiator=EMAIL)
    print("recents after Email clears Priv(x^Email):", ebook_app.recent_list(delegate3))


if __name__ == "__main__":
    main()
