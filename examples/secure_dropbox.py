#!/usr/bin/env python
"""Securing Dropbox (paper section 7.1), end to end.

Dropbox declares — via its Maxoid manifest, with no code changes — that
its sync directory on external storage is private and that every VIEW
intent invokes a delegate. The script shows:

1. other apps cannot see the synced files;
2. the viewer the user clicks runs confined; its side effects land in
   Vol(Dropbox);
3. auto-sync does NOT pick up the delegate's unintended modification;
4. the user commits the one edit they want (uploaded + made default);
5. Clear-Vol discards the rest.

Run: ``python examples/secure_dropbox.py``
"""

from repro import Device
from repro.apps import DropboxApp, PdfViewerApp, BarcodeScannerApp


def main() -> None:
    device = Device(maxoid_enabled=True)
    device.network.publish("dropbox.com", "contract.pdf", b"%PDF the contract")
    dropbox_app = DropboxApp.install(device)
    PdfViewerApp.install(device)
    BarcodeScannerApp.install(device)

    dbx = device.spawn(DropboxApp.BUILD.package)
    dropbox_app.sync_down(dbx, ["contract.pdf"])
    print("synced contract.pdf into EXTDIR/Dropbox (a private external dir)")

    snoop = device.spawn(BarcodeScannerApp.BUILD.package)
    print(
        "another app sees the file?",
        snoop.sys.exists("/storage/sdcard/Dropbox/contract.pdf"),
    )

    # The user clicks the file; the VIEW intent is private per the manifest.
    invocation = dropbox_app.open_file(dbx, "contract.pdf")
    print(f"viewer ran as {invocation.process.context}")

    # Simulate the viewer saving an edit in place (plus its cache traces).
    delegate = device.spawn(PdfViewerApp.BUILD.package, initiator=DropboxApp.BUILD.package)
    delegate.sys.write_file("/storage/sdcard/Dropbox/contract.pdf", b"%PDF signed!")
    delegate.write_external("ViewerCache/junk.tmp", b"cache junk")

    print("auto-sync sees changes?", dropbox_app.auto_sync(dbx))  # [] — integrity!
    print("volatile state:", dbx.volatile.list_files())

    committed = dropbox_app.upload_from_tmp(dbx, "contract.pdf")
    print(f"user committed + uploaded the edit; {committed} now reads:",
          dbx.sys.read_file(committed))

    removed = device.clear_volatile(DropboxApp.BUILD.package)
    print(f"Clear-Vol discarded {removed} leftover item(s) (the cache junk)")


if __name__ == "__main__":
    main()
