#!/usr/bin/env python
"""Quickstart: boot a simulated device, confine an untrusted app, inspect
and manage the volatile state.

Run: ``python examples/quickstart.py``
"""

from repro import AndroidManifest, Device, Intent
from repro.android.intents import IntentFilter


class NotesApp:
    """Our 'initiator': holds a private file it wants processed."""

    def main(self, api, intent):
        return None


class SketchyEditor:
    """An untrusted helper that sprays state around, as real apps do."""

    def main(self, api, intent):
        path = intent.extras["path"]
        text = api.sys.read_file(path)
        # It keeps a recent-files list in its private prefs...
        api.prefs.append_to_list("recent", path)
        # ...copies the document to the SD card...
        api.write_external("EditorCache/copy.txt", text)
        # ...and "edits" the original in place.
        api.sys.write_file(path, text + b" [edited]")
        return len(text)


def main() -> None:
    device = Device(maxoid_enabled=True)
    device.install(AndroidManifest(package="com.example.notes"), NotesApp())
    device.install(
        AndroidManifest(
            package="com.example.editor",
            handles=[IntentFilter(actions=[Intent.ACTION_EDIT])],
        ),
        SketchyEditor(),
    )

    # The initiator writes a private document.
    notes = device.spawn("com.example.notes")
    doc = notes.write_internal("docs/ideas.txt", b"my secret ideas")
    print(f"notes wrote {doc}")

    # Invoke the editor AS A DELEGATE (one flag — or use a Maxoid manifest
    # so no code changes are needed at all).
    intent = Intent(Intent.ACTION_EDIT, extras={"path": doc})
    intent.add_flag(Intent.FLAG_MAXOID_DELEGATE)
    invocation = device.am.start_activity(notes.process, intent)
    print(f"editor ran as {invocation.process.context}, processed {invocation.result} bytes")

    # The editor's traces are all confined:
    bystander = device.spawn("com.example.editor")  # the editor, run normally
    print("editor's recent list when run normally:", bystander.prefs.get("recent"))
    print(
        "SD copy visible publicly?",
        bystander.sys.exists("/storage/sdcard/EditorCache/copy.txt"),
    )
    print("original document intact?", notes.sys.read_file(doc) == b"my secret ideas")

    # The initiator reviews the volatile state and commits the edit it wants.
    print("volatile files:", notes.volatile.list_files())
    edited = notes.volatile.read("/data/data/com.example.notes/tmp/docs/ideas.txt")
    print("the delegate's edit:", edited)
    committed = notes.volatile.commit("/data/data/com.example.notes/tmp/docs/ideas.txt")
    print(f"committed to {committed}: {notes.sys.read_file(committed)}")

    # Discard everything else.
    removed = device.clear_volatile("com.example.notes")
    print(f"cleared {removed} leftover volatile item(s)")


if __name__ == "__main__":
    main()
